//! The HipHop statement AST.
//!
//! This is the tree built either by the textual parser (`hiphop-lang`,
//! the paper's Phase 1) or directly through the [builder API]
//! (`crate::builder`) — the paper §5 notes that HipHop.js also offers an
//! API "to directly build abstract syntax trees from within JavaScript".
//!
//! The surface statements map one-to-one to the constructs used in the
//! paper's examples: `emit`, `sustain`, `fork/par`, `every`, `do/every`,
//! `abort`/`weakabort` (± `immediate`, ± `count`), `await`, `suspend`,
//! labelled `break` (traps), local `signal` declarations, `run`, `async`
//! with `kill` handlers, and `hop` atoms for instantaneous host code.

use crate::expr::{EvalEnv, Expr};
use crate::signal::SignalDecl;
use crate::value::Value;
use std::fmt;
use std::rc::Rc;

/// A source location for diagnostics (file is interned by the parser).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Loc {
    /// 1-based line; 0 when synthesized by the builder API.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Loc {
    /// A synthetic location (builder-constructed nodes).
    pub fn synthetic() -> Loc {
        Loc::default()
    }
    /// A parser location.
    pub fn new(line: u32, col: u32) -> Loc {
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<builder>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// A temporal delay expression, as used by `await`, `abort`, `every`, ...
///
/// `immediate` checks the condition already at start time (paper §3 on
/// `abort` vs `abort immediate`); `count` waits for the n-th occurrence
/// (`await count(attempts, sig.now)` in the `Freeze` module).
#[derive(Debug, Clone, PartialEq)]
pub struct Delay {
    /// Check the condition at the starting instant too.
    pub immediate: bool,
    /// Counted delay: number of occurrences to wait for.
    pub count: Option<Expr>,
    /// The condition, an arbitrary boolean expression over signals.
    pub cond: Expr,
}

impl Delay {
    /// A plain (delayed, uncounted) condition.
    pub fn cond(cond: Expr) -> Delay {
        Delay {
            immediate: false,
            count: None,
            cond,
        }
    }
    /// An `immediate` delay.
    pub fn immediate(cond: Expr) -> Delay {
        Delay {
            immediate: true,
            count: None,
            cond,
        }
    }
    /// A counted delay: `count(n, cond)`.
    pub fn count(n: Expr, cond: Expr) -> Delay {
        Delay {
            immediate: false,
            count: Some(n),
            cond,
        }
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.immediate {
            write!(f, "immediate ")?;
        }
        if let Some(n) = &self.count {
            write!(f, "count({n}, {})", self.cond)
        } else {
            write!(f, "{}", self.cond)
        }
    }
}

/// Context handed to `hop { ... }` atoms: expression environment plus
/// variable assignment.
pub trait AtomCtx: EvalEnv {
    /// Assigns a machine variable.
    fn set_var(&mut self, name: &str, value: Value);
    /// Appends a message to the machine log (used by traced applications;
    /// the Lisinopril app of §4.1 logs all events).
    fn log(&mut self, message: String);
}

/// The body of a `hop { ... }` instantaneous statement.
#[derive(Clone)]
pub enum AtomBody {
    /// Assign `var = expr`.
    Assign(String, Expr),
    /// Append `expr` (display-coerced) to the machine log.
    Log(Expr),
    /// Arbitrary host closure with declared signal reads.
    Host {
        /// Diagnostic name.
        name: String,
        /// Signals the closure reads (for scheduling).
        reads: Vec<(String, crate::expr::SigAccess)>,
        /// The closure.
        f: Rc<dyn Fn(&mut dyn AtomCtx)>,
    },
}

impl AtomBody {
    /// Signal reads performed by this atom.
    pub fn signal_reads(&self) -> Vec<(String, crate::expr::SigAccess)> {
        match self {
            AtomBody::Assign(_, e) | AtomBody::Log(e) => e.signal_reads(),
            AtomBody::Host { reads, .. } => reads.clone(),
        }
    }
}

impl fmt::Debug for AtomBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomBody::Assign(v, e) => write!(f, "Assign({v} = {e})"),
            AtomBody::Log(e) => write!(f, "Log({e})"),
            AtomBody::Host { name, .. } => write!(f, "Host({name})"),
        }
    }
}

impl PartialEq for AtomBody {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AtomBody::Assign(a, b), AtomBody::Assign(c, d)) => a == c && b == d,
            (AtomBody::Log(a), AtomBody::Log(b)) => a == b,
            (AtomBody::Host { f: a, .. }, AtomBody::Host { f: b, .. }) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Context handed to `async` host hooks — the paper's `this` inside
/// `async` bodies (§2.2.5: `this.notify(v)`, `this.react(...)`,
/// `this.intv = ...`).
///
/// The [`crate::mailbox::AsyncHandle`] is cloneable and `'static`, so the
/// spawn hook can move it into timers or promise continuations and call
/// `notify` long after the reaction finished.
pub struct AsyncCtx<'a> {
    /// Handle for queueing notifications/reactions and per-instance state.
    pub handle: crate::mailbox::AsyncHandle,
    /// Read-only view of the signal environment at the instant the hook
    /// runs.
    pub env: &'a dyn EvalEnv,
}

/// A host hook attached to an `async` statement.
#[derive(Clone)]
pub struct AsyncHook {
    /// Diagnostic name.
    pub name: String,
    /// The closure.
    pub f: Rc<dyn Fn(&mut AsyncCtx<'_>)>,
}

impl AsyncHook {
    /// Creates a named hook.
    pub fn new(name: impl Into<String>, f: impl Fn(&mut AsyncCtx<'_>) + 'static) -> Self {
        AsyncHook {
            name: name.into(),
            f: Rc::new(f),
        }
    }
}

impl fmt::Debug for AsyncHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AsyncHook({})", self.name)
    }
}

impl PartialEq for AsyncHook {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.f, &other.f)
    }
}

/// An `async` statement (paper §2.2.4–2.2.5): runs a host activity outside
/// the synchronous world, stays selected until notified, emits an optional
/// completion signal, and runs cleanup hooks on preemption.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsyncSpec {
    /// Completion signal emitted (with the notified value) when the host
    /// activity calls `notify` — `async connected { ... }`.
    pub done_signal: Option<String>,
    /// Started when the statement starts (the `async` body).
    pub on_spawn: Option<AsyncHook>,
    /// Run when the statement is preempted (the `kill { ... }` clause).
    pub on_kill: Option<AsyncHook>,
    /// Run when the statement gets suspended.
    pub on_suspend: Option<AsyncHook>,
    /// Run when the statement resumes from suspension.
    pub on_resume: Option<AsyncHook>,
}

/// A binding in a `run M(...)` instantiation.
#[derive(Debug, Clone, PartialEq)]
pub enum RunBind {
    /// `inner as outer`: module signal `inner` bound to caller signal
    /// `outer` (paper §3: `sig as connected`).
    Signal {
        /// Name in the callee interface.
        inner: String,
        /// Name in the caller scope.
        outer: String,
    },
    /// `name = expr`: module `var` bound to a value (paper §3:
    /// `run Freeze(max=5, attempts=3, ...)`).
    Var {
        /// Variable name in the callee interface.
        name: String,
        /// Bound value expression (must be constant-foldable at link time).
        value: Expr,
    },
}

/// A HipHop statement.
///
/// # Examples
///
/// The paper's `Identity` module body, built directly:
///
/// ```
/// use hiphop_core::ast::{Stmt, Delay};
/// use hiphop_core::expr::Expr;
///
/// let body = Stmt::loop_each(
///     Delay::cond(Expr::now("name").or(Expr::now("passwd"))),
///     Stmt::emit_val(
///         "enableLogin",
///         Expr::nowval("name").field("length").ge(Expr::num(2.0))
///             .and(Expr::nowval("passwd").field("length").ge(Expr::num(2.0))),
///     ),
/// );
/// assert!(body.statement_count() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Stmt {
    /// The empty statement; terminates instantly.
    #[default]
    Nothing,
    /// Stops for this instant, resumes at the next one.
    Pause,
    /// Stops forever (until preempted).
    Halt,
    /// Emits a signal, optionally with a value.
    Emit {
        /// Target signal.
        signal: String,
        /// Optional emitted value.
        value: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Emits the signal at every instant while alive.
    Sustain {
        /// Target signal.
        signal: String,
        /// Optional emitted value.
        value: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Instantaneous host statement (`hop { ... }`).
    Atom {
        /// What to execute.
        body: AtomBody,
        /// Source location.
        loc: Loc,
    },
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// Synchronous parallel (`fork { } par { }`).
    Par(Vec<Stmt>),
    /// Infinite loop; the body must not terminate instantly.
    Loop(Box<Stmt>),
    /// Conditional over a signal expression.
    If {
        /// The condition; may read signal statuses and values.
        cond: Expr,
        /// Then-branch.
        then_branch: Box<Stmt>,
        /// Else-branch (`Nothing` if omitted).
        else_branch: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// Waits for a delay to elapse.
    Await {
        /// The delay.
        delay: Delay,
        /// Source location.
        loc: Loc,
    },
    /// Preemption: kills the body when the delay elapses. Strong
    /// (`abort`) prevents the body from running at the abort instant,
    /// weak (`weakabort`) lets it run one last time (paper §3).
    Abort {
        /// The watched delay.
        delay: Delay,
        /// `true` for `weakabort`.
        weak: bool,
        /// The guarded body.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// Freezes the body while the condition holds.
    Suspend {
        /// The suspension condition.
        delay: Delay,
        /// The controlled body.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `every (d) { p }`: awaits `d`, then restarts `p` at every further
    /// occurrence (strongly preemptive, paper §2.2.2).
    Every {
        /// The triggering delay.
        delay: Delay,
        /// The restarted body.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `do { p } every (d)`: runs `p` immediately, restarts on `d`
    /// (paper §2.2.3, the `Identity` module).
    LoopEach {
        /// The restarting delay.
        delay: Delay,
        /// The body.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// A labelled statement that `break label` escapes from — Esterel's
    /// trap (paper §4.1.2: `DoseOK: fork { ... break DoseOK ... }`).
    Trap {
        /// The label.
        label: String,
        /// The body.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// Escapes the enclosing trap with the given label, weakly preempting
    /// concurrent branches.
    Exit {
        /// The trap label.
        label: String,
        /// Source location.
        loc: Loc,
    },
    /// Local signal declarations scoping over the body.
    Local {
        /// The declared signals (direction is `Local`).
        decls: Vec<SignalDecl>,
        /// The scope.
        body: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// Asynchronous host activity bridged into the synchronous world.
    Async {
        /// The specification (hooks + completion signal).
        spec: AsyncSpec,
        /// Source location.
        loc: Loc,
    },
    /// Module instantiation, inlined at link time.
    Run {
        /// The instantiated module's name.
        module: String,
        /// Explicit bindings (unlisted interface signals bind by name).
        binds: Vec<RunBind>,
        /// Source location.
        loc: Loc,
    },
}

impl Stmt {
    /// `emit S()`.
    pub fn emit(signal: impl Into<String>) -> Stmt {
        Stmt::Emit {
            signal: signal.into(),
            value: None,
            loc: Loc::synthetic(),
        }
    }
    /// `emit S(expr)`.
    pub fn emit_val(signal: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Emit {
            signal: signal.into(),
            value: Some(value),
            loc: Loc::synthetic(),
        }
    }
    /// `sustain S()`.
    pub fn sustain(signal: impl Into<String>) -> Stmt {
        Stmt::Sustain {
            signal: signal.into(),
            value: None,
            loc: Loc::synthetic(),
        }
    }
    /// Sequential composition, flattening nested sequences.
    pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Seq(inner) => out.extend(inner),
                Stmt::Nothing => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Stmt::Nothing,
            1 => out.pop().expect("len checked"),
            _ => Stmt::Seq(out),
        }
    }
    /// Parallel composition.
    pub fn par(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let branches: Vec<Stmt> = stmts.into_iter().collect();
        match branches.len() {
            0 => Stmt::Nothing,
            1 => branches.into_iter().next().expect("len checked"),
            _ => Stmt::Par(branches),
        }
    }
    /// `loop { body }`.
    pub fn loop_(body: Stmt) -> Stmt {
        Stmt::Loop(Box::new(body))
    }
    /// `if (cond) { t } else { e }`.
    pub fn if_else(cond: Expr, t: Stmt, e: Stmt) -> Stmt {
        Stmt::If {
            cond,
            then_branch: Box::new(t),
            else_branch: Box::new(e),
            loc: Loc::synthetic(),
        }
    }
    /// `if (cond) { t }`.
    pub fn if_(cond: Expr, t: Stmt) -> Stmt {
        Stmt::if_else(cond, t, Stmt::Nothing)
    }
    /// `await d`.
    pub fn await_(delay: Delay) -> Stmt {
        Stmt::Await {
            delay,
            loc: Loc::synthetic(),
        }
    }
    /// `abort (d) { body }`.
    pub fn abort(delay: Delay, body: Stmt) -> Stmt {
        Stmt::Abort {
            delay,
            weak: false,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `weakabort (d) { body }`.
    pub fn weak_abort(delay: Delay, body: Stmt) -> Stmt {
        Stmt::Abort {
            delay,
            weak: true,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `suspend (d) { body }`.
    pub fn suspend(delay: Delay, body: Stmt) -> Stmt {
        Stmt::Suspend {
            delay,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `every (d) { body }`.
    pub fn every(delay: Delay, body: Stmt) -> Stmt {
        Stmt::Every {
            delay,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `do { body } every (d)`.
    pub fn loop_each(delay: Delay, body: Stmt) -> Stmt {
        Stmt::LoopEach {
            delay,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `label: { body }` trap.
    pub fn trap(label: impl Into<String>, body: Stmt) -> Stmt {
        Stmt::Trap {
            label: label.into(),
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `break label`.
    pub fn exit(label: impl Into<String>) -> Stmt {
        Stmt::Exit {
            label: label.into(),
            loc: Loc::synthetic(),
        }
    }
    /// `signal s1, s2; body`.
    pub fn local(decls: Vec<SignalDecl>, body: Stmt) -> Stmt {
        Stmt::Local {
            decls,
            body: Box::new(body),
            loc: Loc::synthetic(),
        }
    }
    /// `async [done] { spawn } kill { ... }`.
    pub fn async_(spec: AsyncSpec) -> Stmt {
        Stmt::Async {
            spec,
            loc: Loc::synthetic(),
        }
    }
    /// `run M(...)` with implicit by-name binding.
    pub fn run(module: impl Into<String>) -> Stmt {
        Stmt::Run {
            module: module.into(),
            binds: Vec::new(),
            loc: Loc::synthetic(),
        }
    }
    /// `run M(binds...)`.
    pub fn run_with(module: impl Into<String>, binds: Vec<RunBind>) -> Stmt {
        Stmt::Run {
            module: module.into(),
            binds,
            loc: Loc::synthetic(),
        }
    }
    /// `hop { var = expr }`.
    pub fn assign(var: impl Into<String>, expr: Expr) -> Stmt {
        Stmt::Atom {
            body: AtomBody::Assign(var.into(), expr),
            loc: Loc::synthetic(),
        }
    }
    /// `hop { log(expr) }`.
    pub fn log(expr: Expr) -> Stmt {
        Stmt::Atom {
            body: AtomBody::Log(expr),
            loc: Loc::synthetic(),
        }
    }
    /// Arbitrary host atom.
    pub fn atom(
        name: impl Into<String>,
        reads: Vec<(String, crate::expr::SigAccess)>,
        f: impl Fn(&mut dyn AtomCtx) + 'static,
    ) -> Stmt {
        Stmt::Atom {
            body: AtomBody::Host {
                name: name.into(),
                reads,
                f: Rc::new(f),
            },
            loc: Loc::synthetic(),
        }
    }

    /// Number of statement nodes (the paper's "source code size" proxy for
    /// experiments E1/E2).
    pub fn statement_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Calls `f` on this statement and every nested statement.
    pub fn visit(&self, f: &mut dyn FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                for s in ss {
                    s.visit(f);
                }
            }
            Stmt::Loop(b) => b.visit(f),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
            Stmt::Abort { body, .. }
            | Stmt::Suspend { body, .. }
            | Stmt::Every { body, .. }
            | Stmt::LoopEach { body, .. }
            | Stmt::Trap { body, .. }
            | Stmt::Local { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Rewrites every signal name (declarations excluded — those introduce
    /// fresh scopes handled by the linker) through `f`.
    pub fn rename_free_signals(&mut self, f: &mut dyn FnMut(&str) -> String) {
        match self {
            Stmt::Nothing | Stmt::Pause | Stmt::Halt => {}
            Stmt::Emit { signal, value, .. } | Stmt::Sustain { signal, value, .. } => {
                *signal = f(signal);
                if let Some(e) = value {
                    e.rename_signals(f);
                }
            }
            Stmt::Atom { body, .. } => match body {
                AtomBody::Assign(_, e) | AtomBody::Log(e) => e.rename_signals(f),
                AtomBody::Host { reads, .. } => {
                    for (s, _) in reads {
                        *s = f(s);
                    }
                }
            },
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                for s in ss {
                    s.rename_free_signals(f);
                }
            }
            Stmt::Loop(b) => b.rename_free_signals(f),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                cond.rename_signals(f);
                then_branch.rename_free_signals(f);
                else_branch.rename_free_signals(f);
            }
            Stmt::Await { delay, .. } => {
                delay.cond.rename_signals(f);
                if let Some(n) = &mut delay.count {
                    n.rename_signals(f);
                }
            }
            Stmt::Abort { delay, body, .. }
            | Stmt::Suspend { delay, body, .. }
            | Stmt::Every { delay, body, .. }
            | Stmt::LoopEach { delay, body, .. } => {
                delay.cond.rename_signals(f);
                if let Some(n) = &mut delay.count {
                    n.rename_signals(f);
                }
                body.rename_free_signals(f);
            }
            Stmt::Trap { body, .. } => body.rename_free_signals(f),
            Stmt::Exit { .. } => {}
            Stmt::Local { decls, body, .. } => {
                // Locals shadow: exclude them from the substitution.
                let shadowed: Vec<String> = decls.iter().map(|d| d.name.clone()).collect();
                let mut g = |s: &str| {
                    if shadowed.iter().any(|d| d == s) {
                        s.to_owned()
                    } else {
                        f(s)
                    }
                };
                body.rename_free_signals(&mut g);
            }
            Stmt::Async { spec, .. } => {
                if let Some(sig) = &mut spec.done_signal {
                    *sig = f(sig);
                }
            }
            Stmt::Run { binds, .. } => {
                for b in binds {
                    if let RunBind::Signal { outer, .. } = b {
                        *outer = f(outer);
                    }
                }
            }
        }
    }

    /// Substitutes host variables with constants throughout (used for
    /// `run`'s `var` bindings).
    pub fn substitute_vars(&mut self, f: &mut dyn FnMut(&str) -> Option<Value>) {
        match self {
            Stmt::Nothing | Stmt::Pause | Stmt::Halt | Stmt::Exit { .. } => {}
            Stmt::Emit { value, .. } | Stmt::Sustain { value, .. } => {
                if let Some(e) = value {
                    e.substitute_vars(f);
                }
            }
            Stmt::Atom { body, .. } => match body {
                AtomBody::Assign(_, e) | AtomBody::Log(e) => e.substitute_vars(f),
                AtomBody::Host { .. } => {}
            },
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                for s in ss {
                    s.substitute_vars(f);
                }
            }
            Stmt::Loop(b) => b.substitute_vars(f),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                cond.substitute_vars(f);
                then_branch.substitute_vars(f);
                else_branch.substitute_vars(f);
            }
            Stmt::Await { delay, .. } => {
                delay.cond.substitute_vars(f);
                if let Some(n) = &mut delay.count {
                    n.substitute_vars(f);
                }
            }
            Stmt::Abort { delay, body, .. }
            | Stmt::Suspend { delay, body, .. }
            | Stmt::Every { delay, body, .. }
            | Stmt::LoopEach { delay, body, .. } => {
                delay.cond.substitute_vars(f);
                if let Some(n) = &mut delay.count {
                    n.substitute_vars(f);
                }
                body.substitute_vars(f);
            }
            Stmt::Trap { body, .. } | Stmt::Local { body, .. } => body.substitute_vars(f),
            Stmt::Async { .. } => {}
            Stmt::Run { binds, .. } => {
                for b in binds {
                    if let RunBind::Var { value, .. } = b {
                        value.substitute_vars(f);
                    }
                }
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.pretty(f, 0)
    }
}

impl Stmt {
    fn pretty(&self, f: &mut fmt::Formatter<'_>, ind: usize) -> fmt::Result {
        let pad = "  ".repeat(ind);
        match self {
            Stmt::Nothing => writeln!(f, "{pad};"),
            Stmt::Pause => writeln!(f, "{pad}yield;"),
            Stmt::Halt => writeln!(f, "{pad}halt;"),
            Stmt::Emit { signal, value, .. } => match value {
                Some(v) => writeln!(f, "{pad}emit {signal}({v});"),
                None => writeln!(f, "{pad}emit {signal}();"),
            },
            Stmt::Sustain { signal, value, .. } => match value {
                Some(v) => writeln!(f, "{pad}sustain {signal}({v});"),
                None => writeln!(f, "{pad}sustain {signal}();"),
            },
            Stmt::Atom { body, .. } => match body {
                AtomBody::Assign(v, e) => writeln!(f, "{pad}hop {{ {v} = {e}; }}"),
                AtomBody::Log(e) => writeln!(f, "{pad}hop {{ log({e}); }}"),
                AtomBody::Host { name, .. } => writeln!(f, "{pad}hop {{ host \"{name}\"; }}"),
            },
            Stmt::Seq(ss) => {
                for s in ss {
                    s.pretty(f, ind)?;
                }
                Ok(())
            }
            Stmt::Par(ss) => {
                for (i, s) in ss.iter().enumerate() {
                    let kw = if i == 0 { "fork" } else { "} par" };
                    writeln!(f, "{pad}{kw} {{")?;
                    s.pretty(f, ind + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::Loop(b) => {
                writeln!(f, "{pad}loop {{")?;
                b.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                then_branch.pretty(f, ind + 1)?;
                if **else_branch != Stmt::Nothing {
                    writeln!(f, "{pad}}} else {{")?;
                    else_branch.pretty(f, ind + 1)?;
                }
                writeln!(f, "{pad}}}")
            }
            Stmt::Await { delay, .. } => writeln!(f, "{pad}await ({delay});"),
            Stmt::Abort {
                delay, weak, body, ..
            } => {
                writeln!(
                    f,
                    "{pad}{} ({delay}) {{",
                    if *weak { "weakabort" } else { "abort" }
                )?;
                body.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Suspend { delay, body, .. } => {
                writeln!(f, "{pad}suspend ({delay}) {{")?;
                body.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Every { delay, body, .. } => {
                writeln!(f, "{pad}every ({delay}) {{")?;
                body.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::LoopEach { delay, body, .. } => {
                writeln!(f, "{pad}do {{")?;
                body.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}} every ({delay})")
            }
            Stmt::Trap { label, body, .. } => {
                writeln!(f, "{pad}{label}: {{")?;
                body.pretty(f, ind + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Exit { label, .. } => writeln!(f, "{pad}break {label};"),
            Stmt::Local { decls, body, .. } => {
                let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
                writeln!(f, "{pad}signal {};", names.join(", "))?;
                body.pretty(f, ind)
            }
            Stmt::Async { spec, .. } => {
                match &spec.done_signal {
                    Some(s) => writeln!(f, "{pad}async {s} {{ ... }}")?,
                    None => writeln!(f, "{pad}async {{ ... }}")?,
                }
                Ok(())
            }
            Stmt::Run { module, binds, .. } => {
                let mut parts = Vec::new();
                for b in binds {
                    match b {
                        RunBind::Signal { inner, outer } => parts.push(format!("{inner} as {outer}")),
                        RunBind::Var { name, value } => parts.push(format!("{name}={value}")),
                    }
                }
                parts.push("...".to_owned());
                writeln!(f, "{pad}run {module}({});", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_flattens_and_drops_nothing() {
        let s = Stmt::seq([
            Stmt::Nothing,
            Stmt::seq([Stmt::Pause, Stmt::Pause]),
            Stmt::emit("a"),
        ]);
        match &s {
            Stmt::Seq(ss) => assert_eq!(ss.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(Stmt::seq([]), Stmt::Nothing);
        assert_eq!(Stmt::seq([Stmt::Pause]), Stmt::Pause);
    }

    #[test]
    fn par_singleton_collapses() {
        assert_eq!(Stmt::par([Stmt::Pause]), Stmt::Pause);
        assert!(matches!(Stmt::par([Stmt::Pause, Stmt::Halt]), Stmt::Par(_)));
    }

    #[test]
    fn statement_count_counts_nested() {
        let s = Stmt::loop_(Stmt::seq([Stmt::emit("a"), Stmt::Pause]));
        // loop + seq + emit + pause
        assert_eq!(s.statement_count(), 4);
    }

    #[test]
    fn rename_respects_local_shadowing() {
        let mut s = Stmt::local(
            vec![SignalDecl::new("a", crate::signal::Direction::Local)],
            Stmt::seq([Stmt::emit("a"), Stmt::emit("b")]),
        );
        s.rename_free_signals(&mut |n| format!("{n}_x"));
        let shown = s.to_string();
        assert!(shown.contains("emit a()"), "local a must not be renamed: {shown}");
        assert!(shown.contains("emit b_x()"), "free b must be renamed: {shown}");
    }

    #[test]
    fn var_substitution_in_delays() {
        let mut s = Stmt::await_(Delay::count(Expr::var("attempts"), Expr::now("sig")));
        s.substitute_vars(&mut |v| (v == "attempts").then_some(Value::Num(3.0)));
        assert_eq!(s.to_string().trim(), "await (count(3, sig.now));");
    }

    #[test]
    fn pretty_printer_shapes() {
        let s = Stmt::par([
            Stmt::every(Delay::cond(Expr::now("login")), Stmt::run("Authenticate")),
            Stmt::Halt,
        ]);
        let text = s.to_string();
        assert!(text.contains("fork {"));
        assert!(text.contains("} par {"));
        assert!(text.contains("every (login.now)"));
    }

    #[test]
    fn delay_display() {
        assert_eq!(Delay::immediate(Expr::now("s")).to_string(), "immediate s.now");
        assert_eq!(
            Delay::count(Expr::num(5.0), Expr::now("s")).to_string(),
            "count(5, s.now)"
        );
    }
}
