//! Data expressions embedded in HipHop statements.
//!
//! The paper embeds plain JavaScript expressions inside reactive statements
//! (`if`, `emit`, delay conditions, ...) with the restriction that signal
//! accesses are explicit: `S.now`, `S.pre`, `S.nowval`, `S.preval`
//! (paper §2.2.1). We mirror this with an [`Expr`] tree whose signal
//! accesses are first-class nodes, which lets the compiler compute the
//! *data dependencies* that augment the boolean circuit (paper §5.1):
//! an expression reading `S.now`/`S.nowval` may only be evaluated once
//! `S`'s status (and, for values, all of `S`'s emitters) are resolved.
//!
//! Host Rust closures can be embedded with [`Expr::host`] provided they
//! declare which signals they read.

use crate::value::Value;
use std::fmt;
use std::rc::Rc;

/// How an expression accesses a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigAccess {
    /// `S.now` — presence this instant (creates a causality dependency).
    Now,
    /// `S.pre` — presence at the previous instant (no dependency).
    Pre,
    /// `S.nowval` — value this instant (depends on all emitters of `S`).
    NowVal,
    /// `S.preval` — value at the previous instant (no dependency).
    PreVal,
}

impl SigAccess {
    /// Whether this access constrains same-instant scheduling.
    pub fn is_causal(self) -> bool {
        matches!(self, SigAccess::Now | SigAccess::NowVal)
    }
}

/// Unary operators of the embedded expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Binary operators of the embedded expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (JavaScript semantics: string concat when either side is Str).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==` (loose equality).
    Eq,
    /// `!=`.
    Ne,
    /// `===` (strict equality).
    StrictEq,
    /// `!==`.
    StrictNe,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (returns a boolean; short-circuit is unobservable as the
    /// expression language is pure).
    And,
    /// `||`.
    Or,
}

/// A host function embedded in an expression, with its declared signal
/// reads.
#[derive(Clone)]
pub struct HostExpr {
    /// Human-readable name for diagnostics.
    pub name: String,
    /// Signals the closure reads, with the access kind.
    pub reads: Vec<(String, SigAccess)>,
    /// The closure; receives an evaluation environment.
    pub f: Rc<dyn Fn(&dyn EvalEnv) -> Value>,
}

impl fmt::Debug for HostExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostExpr({}, reads {:?})", self.name, self.reads)
    }
}

impl PartialEq for HostExpr {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.f, &other.f)
    }
}

/// The environment an expression is evaluated against.
///
/// Implemented by the runtime machine; tests can implement it with maps.
pub trait EvalEnv {
    /// Status of signal `name` this instant.
    fn now(&self, name: &str) -> bool;
    /// Status of signal `name` at the previous instant.
    fn pre(&self, name: &str) -> bool;
    /// Value of signal `name` this instant.
    fn nowval(&self, name: &str) -> Value;
    /// Value of signal `name` at the previous instant.
    fn preval(&self, name: &str) -> Value;
    /// Value of host variable `name` (module `var`s).
    fn var(&self, name: &str) -> Value;
}

/// A pure data expression.
///
/// # Examples
///
/// Building `name.nowval.length >= 2 && passwd.nowval.length >= 2` from the
/// paper's `Identity` module:
///
/// ```
/// use hiphop_core::expr::Expr;
///
/// let e = Expr::nowval("name").field("length").ge(Expr::num(2.0))
///     .and(Expr::nowval("passwd").field("length").ge(Expr::num(2.0)));
/// assert_eq!(e.signal_reads().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A signal access (`S.now`, `S.pre`, `S.nowval`, `S.preval`).
    Sig(String, SigAccess),
    /// A host variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Property access `e.name` (e.g. `.length`).
    Field(Box<Expr>, String),
    /// Index access `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Array literal.
    Array(Vec<Expr>),
    /// A call to a built-in pure function (see [`call_builtin`] for the
    /// table): `min`, `max`, `abs`, `floor`, `ceil`, `round`, `sqrt`,
    /// `pow`, `upper`, `lower`, `substring`, `indexOf`, `includes`,
    /// `concat`. Unknown names evaluate to `Null`.
    Call(String, Vec<Expr>),
    /// A host closure with declared signal reads.
    Host(HostExpr),
}

/// Evaluates a built-in pure function. Unknown functions return `Null`
/// (mirroring JavaScript's loose failure modes; the static checker has no
/// registry of host functions to validate against).
pub fn call_builtin(name: &str, args: &[Value]) -> Value {
    let num = |i: usize| args.get(i).map(Value::as_num).unwrap_or(f64::NAN);
    let text = |i: usize| {
        args.get(i)
            .map(Value::to_display_string)
            .unwrap_or_default()
    };
    match name {
        "min" => Value::Num(args.iter().map(Value::as_num).fold(f64::INFINITY, f64::min)),
        "max" => Value::Num(
            args.iter()
                .map(Value::as_num)
                .fold(f64::NEG_INFINITY, f64::max),
        ),
        "abs" => Value::Num(num(0).abs()),
        "floor" => Value::Num(num(0).floor()),
        "ceil" => Value::Num(num(0).ceil()),
        "round" => Value::Num(num(0).round()),
        "sqrt" => Value::Num(num(0).sqrt()),
        "pow" => Value::Num(num(0).powf(num(1))),
        "upper" => Value::Str(text(0).to_uppercase()),
        "lower" => Value::Str(text(0).to_lowercase()),
        "concat" => Value::Str(args.iter().map(Value::to_display_string).collect()),
        "substring" => {
            let s = text(0);
            let chars: Vec<char> = s.chars().collect();
            let from = (num(1).max(0.0) as usize).min(chars.len());
            let to = if args.len() > 2 {
                (num(2).max(0.0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            Value::Str(chars[from..to.max(from)].iter().collect())
        }
        "indexOf" => {
            let hay = text(0);
            let needle = text(1);
            Value::Num(
                hay.find(&needle)
                    .map(|b| hay[..b].chars().count() as f64)
                    .unwrap_or(-1.0),
            )
        }
        "includes" => Value::Bool(text(0).contains(&text(1))),
        "window_push" => {
            // window_push(arr, item, n): append and keep the last n.
            let mut items = match args.first() {
                Some(Value::Arr(xs)) => xs.clone(),
                _ => Vec::new(),
            };
            if let Some(item) = args.get(1) {
                items.push(item.clone());
            }
            let n = num(2).max(0.0) as usize;
            if items.len() > n {
                items.drain(..items.len() - n);
            }
            Value::Arr(items)
        }
        _ => Value::Null,
    }
}

#[allow(clippy::should_implement_trait)] // DSL combinators mirror the paper's operators
impl Expr {
    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }
    /// Numeric literal.
    pub fn num(n: f64) -> Expr {
        Expr::Lit(Value::Num(n))
    }
    /// String literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Lit(Value::Str(s.into()))
    }
    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Value::Bool(b))
    }
    /// `S.now`.
    pub fn now(sig: impl Into<String>) -> Expr {
        Expr::Sig(sig.into(), SigAccess::Now)
    }
    /// `S.pre`.
    pub fn pre(sig: impl Into<String>) -> Expr {
        Expr::Sig(sig.into(), SigAccess::Pre)
    }
    /// `S.nowval`.
    pub fn nowval(sig: impl Into<String>) -> Expr {
        Expr::Sig(sig.into(), SigAccess::NowVal)
    }
    /// `S.preval`.
    pub fn preval(sig: impl Into<String>) -> Expr {
        Expr::Sig(sig.into(), SigAccess::PreVal)
    }
    /// Host variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }
    /// Embeds a host closure; `reads` must list every signal access the
    /// closure performs so the compiler can schedule it (paper §5.1 "data
    /// dependencies").
    pub fn host(
        name: impl Into<String>,
        reads: Vec<(String, SigAccess)>,
        f: impl Fn(&dyn EvalEnv) -> Value + 'static,
    ) -> Expr {
        Expr::Host(HostExpr {
            name: name.into(),
            reads,
            f: Rc::new(f),
        })
    }

    /// `!self`.
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }
    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }
    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// `self == rhs` (loose).
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// `self === rhs`.
    pub fn strict_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::StrictEq, rhs)
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `self.name`.
    pub fn field(self, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self), name.into())
    }
    /// `self[i]`.
    pub fn index(self, i: Expr) -> Expr {
        Expr::Index(Box::new(self), Box::new(i))
    }
    /// `cond ? self : other` with `self` as the then-branch.
    pub fn ternary(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b))
    }
    /// A built-in function call (see [`call_builtin`]).
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Every signal access in the expression (for dependency analysis and
    /// scope checking). Duplicates are preserved.
    pub fn signal_reads(&self) -> Vec<(String, SigAccess)> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<(String, SigAccess)>) {
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Sig(s, a) => out.push((s.clone(), *a)),
            Expr::Unary(_, e) | Expr::Field(e, _) => e.collect_reads(out),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_reads(out);
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Array(es) | Expr::Call(_, es) => {
                for e in es {
                    e.collect_reads(out);
                }
            }
            Expr::Host(h) => out.extend(h.reads.iter().cloned()),
        }
    }

    /// Rewrites every signal name through `f` (used by module linking to
    /// bind interface signals to caller signals).
    pub fn rename_signals(&mut self, f: &mut dyn FnMut(&str) -> String) {
        match self {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Sig(s, _) => *s = f(s),
            Expr::Unary(_, e) | Expr::Field(e, _) => e.rename_signals(f),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.rename_signals(f);
                b.rename_signals(f);
            }
            Expr::Ternary(c, a, b) => {
                c.rename_signals(f);
                a.rename_signals(f);
                b.rename_signals(f);
            }
            Expr::Array(es) | Expr::Call(_, es) => {
                for e in es {
                    e.rename_signals(f);
                }
            }
            Expr::Host(h) => {
                for (s, _) in &mut h.reads {
                    *s = f(s);
                }
            }
        }
    }

    /// Substitutes host variables with constant values (used when `run`
    /// binds module `var`s, e.g. `run Freeze(max=5, ...)`).
    pub fn substitute_vars(&mut self, f: &mut dyn FnMut(&str) -> Option<Value>) {
        match self {
            Expr::Lit(_) | Expr::Sig(..) => {}
            Expr::Var(name) => {
                if let Some(v) = f(name) {
                    *self = Expr::Lit(v);
                }
            }
            Expr::Unary(_, e) | Expr::Field(e, _) => e.substitute_vars(f),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.substitute_vars(f);
                b.substitute_vars(f);
            }
            Expr::Ternary(c, a, b) => {
                c.substitute_vars(f);
                a.substitute_vars(f);
                b.substitute_vars(f);
            }
            Expr::Array(es) | Expr::Call(_, es) => {
                for e in es {
                    e.substitute_vars(f);
                }
            }
            Expr::Host(_) => {}
        }
    }

    /// Evaluates the expression in `env`.
    pub fn eval(&self, env: &dyn EvalEnv) -> Value {
        match self {
            Expr::Lit(v) => v.clone(),
            Expr::Sig(s, a) => match a {
                SigAccess::Now => Value::Bool(env.now(s)),
                SigAccess::Pre => Value::Bool(env.pre(s)),
                SigAccess::NowVal => env.nowval(s),
                SigAccess::PreVal => env.preval(s),
            },
            Expr::Var(name) => env.var(name),
            Expr::Unary(op, e) => {
                let v = e.eval(env);
                match op {
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::Neg => Value::Num(-v.as_num()),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval(env);
                let y = b.eval(env);
                match op {
                    BinOp::Add => crate::signal::Combine::Plus.apply(&x, &y),
                    BinOp::Sub => Value::Num(x.as_num() - y.as_num()),
                    BinOp::Mul => Value::Num(x.as_num() * y.as_num()),
                    BinOp::Div => Value::Num(x.as_num() / y.as_num()),
                    BinOp::Rem => Value::Num(x.as_num() % y.as_num()),
                    BinOp::Eq => Value::Bool(x.loose_eq(&y)),
                    BinOp::Ne => Value::Bool(!x.loose_eq(&y)),
                    BinOp::StrictEq => Value::Bool(x == y),
                    BinOp::StrictNe => Value::Bool(x != y),
                    BinOp::Lt => Self::cmp_vals(&x, &y, |o| o == std::cmp::Ordering::Less),
                    BinOp::Le => Self::cmp_vals(&x, &y, |o| o != std::cmp::Ordering::Greater),
                    BinOp::Gt => Self::cmp_vals(&x, &y, |o| o == std::cmp::Ordering::Greater),
                    BinOp::Ge => Self::cmp_vals(&x, &y, |o| o != std::cmp::Ordering::Less),
                    BinOp::And => Value::Bool(x.truthy() && y.truthy()),
                    BinOp::Or => Value::Bool(x.truthy() || y.truthy()),
                }
            }
            Expr::Ternary(c, a, b) => {
                if c.eval(env).truthy() {
                    a.eval(env)
                } else {
                    b.eval(env)
                }
            }
            Expr::Field(e, name) => e.eval(env).field(name),
            Expr::Index(e, i) => e.eval(env).index(&i.eval(env)),
            Expr::Array(es) => Value::Arr(es.iter().map(|e| e.eval(env)).collect()),
            Expr::Call(name, es) => {
                let args: Vec<Value> = es.iter().map(|e| e.eval(env)).collect();
                call_builtin(name, &args)
            }
            Expr::Host(h) => (h.f)(env),
        }
    }

    fn cmp_vals(x: &Value, y: &Value, test: impl Fn(std::cmp::Ordering) -> bool) -> Value {
        // String-string comparisons are lexicographic (JavaScript);
        // everything else numeric. NaN comparisons are false.
        match (x, y) {
            (Value::Str(a), Value::Str(b)) => Value::Bool(test(a.cmp(b))),
            _ => {
                let (a, b) = (x.as_num(), y.as_num());
                Value::Bool(a.partial_cmp(&b).map(&test).unwrap_or(false))
            }
        }
    }

    /// Constant-folds the expression if it reads no signals or variables.
    pub fn const_value(&self) -> Option<Value> {
        struct Empty;
        impl EvalEnv for Empty {
            fn now(&self, _: &str) -> bool {
                false
            }
            fn pre(&self, _: &str) -> bool {
                false
            }
            fn nowval(&self, _: &str) -> Value {
                Value::Null
            }
            fn preval(&self, _: &str) -> Value {
                Value::Null
            }
            fn var(&self, _: &str) -> Value {
                Value::Null
            }
        }
        if self.signal_reads().is_empty() && !self.reads_vars() {
            Some(self.eval(&Empty))
        } else {
            None
        }
    }

    /// Whether the expression reads host variables — or contains a host
    /// closure, which is conservatively assumed to read arbitrary state.
    /// Used by [`Expr::const_value`] and by the sparse engine's hot-set
    /// classification (a var-reading test can change value without any
    /// net changing, so it must be re-evaluated every armed instant).
    pub fn reads_vars(&self) -> bool {
        match self {
            Expr::Var(_) => true,
            Expr::Lit(_) | Expr::Sig(..) => false,
            Expr::Unary(_, e) | Expr::Field(e, _) => e.reads_vars(),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => a.reads_vars() || b.reads_vars(),
            Expr::Ternary(c, a, b) => c.reads_vars() || a.reads_vars() || b.reads_vars(),
            Expr::Array(es) | Expr::Call(_, es) => es.iter().any(Expr::reads_vars),
            Expr::Host(_) => true, // conservatively assume host closures read state
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Sig(s, a) => match a {
                SigAccess::Now => write!(f, "{s}.now"),
                SigAccess::Pre => write!(f, "{s}.pre"),
                SigAccess::NowVal => write!(f, "{s}.nowval"),
                SigAccess::PreVal => write!(f, "{s}.preval"),
            },
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, a, b) => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::StrictEq => "===",
                    BinOp::StrictNe => "!==",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::Ternary(c, a, b) => write!(f, "({c} ? {a} : {b})"),
            Expr::Field(e, n) => write!(f, "{e}.{n}"),
            Expr::Index(e, i) => write!(f, "{e}[{i}]"),
            Expr::Array(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::Call(name, es) => {
                write!(f, "{name}(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Host(h) => write!(f, "${{{}}}", h.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapEnv {
        now: HashMap<String, bool>,
        vals: HashMap<String, Value>,
        vars: HashMap<String, Value>,
    }
    impl MapEnv {
        fn new() -> Self {
            MapEnv {
                now: HashMap::new(),
                vals: HashMap::new(),
                vars: HashMap::new(),
            }
        }
    }
    impl EvalEnv for MapEnv {
        fn now(&self, n: &str) -> bool {
            *self.now.get(n).unwrap_or(&false)
        }
        fn pre(&self, _: &str) -> bool {
            false
        }
        fn nowval(&self, n: &str) -> Value {
            self.vals.get(n).cloned().unwrap_or(Value::Null)
        }
        fn preval(&self, _: &str) -> Value {
            Value::Null
        }
        fn var(&self, n: &str) -> Value {
            self.vars.get(n).cloned().unwrap_or(Value::Null)
        }
    }

    #[test]
    fn identity_module_condition() {
        // name.nowval.length >= 2 && passwd.nowval.length >= 2
        let e = Expr::nowval("name")
            .field("length")
            .ge(Expr::num(2.0))
            .and(Expr::nowval("passwd").field("length").ge(Expr::num(2.0)));
        let mut env = MapEnv::new();
        env.vals.insert("name".into(), Value::from("jo"));
        env.vals.insert("passwd".into(), Value::from("x"));
        assert_eq!(e.eval(&env), Value::Bool(false));
        env.vals.insert("passwd".into(), Value::from("xy"));
        assert_eq!(e.eval(&env), Value::Bool(true));
    }

    #[test]
    fn signal_reads_collected() {
        let e = Expr::now("login").or(Expr::preval("time").gt(Expr::num(5.0)));
        let reads = e.signal_reads();
        assert_eq!(reads.len(), 2);
        assert!(reads.contains(&("login".into(), SigAccess::Now)));
        assert!(reads.contains(&("time".into(), SigAccess::PreVal)));
        assert!(SigAccess::Now.is_causal());
        assert!(!SigAccess::PreVal.is_causal());
    }

    #[test]
    fn rename_and_substitute() {
        let mut e = Expr::nowval("sig").gt(Expr::var("max"));
        e.rename_signals(&mut |s| {
            if s == "sig" {
                "connected".into()
            } else {
                s.into()
            }
        });
        e.substitute_vars(&mut |v| (v == "max").then_some(Value::Num(5.0)));
        assert_eq!(e.to_string(), "(connected.nowval > 5)");
    }

    #[test]
    fn const_folding() {
        assert_eq!(
            Expr::num(2.0).add(Expr::num(3.0)).const_value(),
            Some(Value::Num(5.0))
        );
        assert_eq!(Expr::now("s").const_value(), None);
        assert_eq!(Expr::var("x").const_value(), None);
    }

    #[test]
    fn comparison_nan_and_strings() {
        let env = MapEnv::new();
        assert_eq!(
            Expr::str("a").lt(Expr::str("b")).eval(&env),
            Value::Bool(true)
        );
        // NaN comparisons are false either way.
        let nan = Expr::num(f64::NAN);
        assert_eq!(nan.clone().lt(Expr::num(1.0)).eval(&env), Value::Bool(false));
        assert_eq!(nan.ge(Expr::num(1.0)).eval(&env), Value::Bool(false));
    }

    #[test]
    fn ternary_and_host() {
        let mut env = MapEnv::new();
        env.now.insert("go".into(), true);
        let e = Expr::ternary(Expr::now("go"), Expr::str("yes"), Expr::str("no"));
        assert_eq!(e.eval(&env), Value::from("yes"));
        let h = Expr::host("double", vec![("x".into(), SigAccess::NowVal)], |env| {
            Value::Num(env.nowval("x").as_num() * 2.0)
        });
        env.vals.insert("x".into(), Value::Num(21.0));
        assert_eq!(h.eval(&env), Value::Num(42.0));
        assert_eq!(h.signal_reads(), vec![("x".into(), SigAccess::NowVal)]);
    }

    #[test]
    fn builtin_calls() {
        let env = MapEnv::new();
        assert_eq!(
            Expr::call("min", vec![Expr::num(3.0), Expr::num(1.0), Expr::num(2.0)]).eval(&env),
            Value::Num(1.0)
        );
        assert_eq!(
            Expr::call("upper", vec![Expr::str("joe")]).eval(&env),
            Value::from("JOE")
        );
        assert_eq!(
            Expr::call("substring", vec![Expr::str("hello"), Expr::num(1.0), Expr::num(3.0)])
                .eval(&env),
            Value::from("el")
        );
        assert_eq!(
            Expr::call("indexOf", vec![Expr::str("hello"), Expr::str("llo")]).eval(&env),
            Value::Num(2.0)
        );
        assert_eq!(
            Expr::call("includes", vec![Expr::str("hello"), Expr::str("xyz")]).eval(&env),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::call("nonsense", vec![]).eval(&env),
            Value::Null,
            "unknown builtins are Null"
        );
        // Reads flow through call arguments.
        let e = Expr::call("abs", vec![Expr::nowval("x")]);
        assert_eq!(e.signal_reads().len(), 1);
        assert_eq!(e.to_string(), "abs(x.nowval)");
    }

    #[test]
    fn display_roundtrip_shapes() {
        let e = Expr::now("a").and(Expr::nowval("b").field("length").ge(Expr::num(2.0)));
        assert_eq!(e.to_string(), "(a.now && (b.nowval.length >= 2))");
    }
}
