//! A library of reusable temporal modules — the paper's §2.3 claim:
//! HipHop's behavioral modularity "facilitates … the building and reuse
//! of library modules" (the `Timer` of §2.2.5 lives in
//! `hiphop-eventloop::stdlib` because it needs the host clock; the
//! modules here are pure reactive logic).
//!
//! All modules are parameterized by a tick signal so they work with any
//! time base (seconds, minutes, beats).

use crate::ast::{Delay, Stmt};
use crate::expr::Expr;
use crate::module::{Module, VarDecl};
use crate::signal::{Direction, SignalDecl};

/// `Debounce(var n, in sig, in tick, out debounced)` — emits `debounced`
/// once `sig` has been quiet for `n` ticks after (re)occurring; every new
/// `sig` restarts the quiet window.
pub fn debounce() -> Module {
    Module::new("Debounce")
        .var(VarDecl::with_default("n", 2i64))
        .input(SignalDecl::new("sig", Direction::In))
        .input(SignalDecl::new("tick", Direction::In))
        .output(SignalDecl::new("debounced", Direction::Out))
        .body(Stmt::every(
            Delay::cond(Expr::now("sig")),
            Stmt::seq([
                Stmt::await_(Delay::count(Expr::var("n"), Expr::now("tick"))),
                Stmt::emit("debounced"),
                Stmt::Halt,
            ]),
        ))
}

/// `Watchdog(var n, in kick, in tick, out alarm)` — sustains `alarm`
/// when `kick` has been missing for `n` ticks; any `kick` resets it.
pub fn watchdog() -> Module {
    Module::new("Watchdog")
        .var(VarDecl::with_default("n", 3i64))
        .input(SignalDecl::new("kick", Direction::In))
        .input(SignalDecl::new("tick", Direction::In))
        .output(SignalDecl::new("alarm", Direction::Out))
        .body(Stmt::loop_each(
            Delay::cond(Expr::now("kick")),
            Stmt::seq([
                Stmt::await_(Delay::count(Expr::var("n"), Expr::now("tick"))),
                Stmt::sustain("alarm"),
            ]),
        ))
}

/// `TimeoutGuard(var n, in start, in done, in tick, out timeout)` —
/// after each `start`, emits `timeout` if `done` does not arrive within
/// `n` ticks (the "process parallel queries, abort the others" pattern
/// the paper's related work calls fundamental).
pub fn timeout_guard() -> Module {
    Module::new("TimeoutGuard")
        .var(VarDecl::with_default("n", 5i64))
        .input(SignalDecl::new("start", Direction::In))
        .input(SignalDecl::new("done", Direction::In))
        .input(SignalDecl::new("tick", Direction::In))
        .output(SignalDecl::new("timeout", Direction::Out))
        .body(Stmt::every(
            Delay::cond(Expr::now("start")),
            Stmt::trap(
                "Watch",
                Stmt::par([
                    Stmt::seq([
                        Stmt::await_(Delay::cond(Expr::now("done"))),
                        Stmt::exit("Watch"),
                    ]),
                    Stmt::seq([
                        Stmt::await_(Delay::count(Expr::var("n"), Expr::now("tick"))),
                        Stmt::emit("timeout"),
                        Stmt::exit("Watch"),
                    ]),
                ]),
            ),
        ))
}

/// `RisingEdge(in sig, out rise)` — emits `rise` at instants where `sig`
/// is present but was absent at the previous instant.
pub fn rising_edge() -> Module {
    Module::new("RisingEdge")
        .input(SignalDecl::new("sig", Direction::In))
        .output(SignalDecl::new("rise", Direction::Out))
        .body(Stmt::loop_(Stmt::seq([
            Stmt::if_(Expr::now("sig").and(Expr::pre("sig").not()), Stmt::emit("rise")),
            Stmt::Pause,
        ])))
}

/// `PulseDivider(var n, in sig, out out)` — emits `out` every `n`-th
/// occurrence of `sig`, repeatedly.
pub fn pulse_divider() -> Module {
    Module::new("PulseDivider")
        .var(VarDecl::with_default("n", 2i64))
        .input(SignalDecl::new("sig", Direction::In))
        .output(SignalDecl::new("out", Direction::Out))
        .body(Stmt::every(
            Delay::count(Expr::var("n"), Expr::now("sig")),
            Stmt::emit("out"),
        ))
}

/// `Latch(in set, in reset, out q)` — sustains `q` from `set` until
/// `reset` (reset wins on simultaneity).
pub fn latch() -> Module {
    Module::new("Latch")
        .input(SignalDecl::new("set", Direction::In))
        .input(SignalDecl::new("reset", Direction::In))
        .output(SignalDecl::new("q", Direction::Out))
        .body(Stmt::loop_(Stmt::seq([
            Stmt::await_(Delay::cond(Expr::now("set").and(Expr::now("reset").not()))),
            Stmt::abort(Delay::cond(Expr::now("reset")), Stmt::sustain("q")),
        ])))
}

/// Registers every library module into `registry` (convenience for
/// programs that `run` them by name).
pub fn register_all(registry: &mut crate::module::ModuleRegistry) {
    registry.register(debounce());
    registry.register(watchdog());
    registry.register(timeout_guard());
    registry.register(rising_edge());
    registry.register(pulse_divider());
    registry.register(latch());
}
