//! Error types for the core language layer (linking and static checks).

use crate::ast::Loc;
use std::fmt;

/// Errors raised while linking modules or statically checking a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `run M(...)` names a module absent from the registry.
    UnknownModule {
        /// The missing module name.
        module: String,
        /// Where the `run` appears.
        loc: Loc,
    },
    /// Module instantiation recursed (`A` runs `B` runs `A`).
    RecursiveModule {
        /// The instantiation chain, outermost first.
        chain: Vec<String>,
    },
    /// A `run` binding names a signal or variable that the callee
    /// interface does not declare.
    UnknownRunBinding {
        /// The callee module.
        module: String,
        /// The unknown binding name.
        binding: String,
        /// Where the `run` appears.
        loc: Loc,
    },
    /// A `var` binding in a `run` does not fold to a constant.
    NonConstantVarBinding {
        /// The callee module.
        module: String,
        /// The variable name.
        var: String,
        /// Where the `run` appears.
        loc: Loc,
    },
    /// A signal is used but not declared in any enclosing scope.
    UnboundSignal {
        /// The undeclared name.
        signal: String,
        /// Where it is used.
        loc: Loc,
    },
    /// `break L` has no enclosing trap labelled `L`.
    UnknownTrapLabel {
        /// The label.
        label: String,
        /// Where the `break` appears.
        loc: Loc,
    },
    /// A `loop` body may terminate instantaneously (paper §3: "the body is
    /// not allowed to terminate instantly when started").
    InstantaneousLoop {
        /// Where the loop appears.
        loc: Loc,
    },
    /// A delay combines `immediate` with `count(...)`, which HipHop
    /// rejects.
    ImmediateCountedDelay {
        /// Where the delay appears.
        loc: Loc,
    },
    /// Two interface signals share a name.
    DuplicateSignal {
        /// The duplicated name.
        signal: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownModule { module, loc } => {
                write!(f, "unknown module `{module}` in run at {loc}")
            }
            CoreError::RecursiveModule { chain } => {
                write!(f, "recursive module instantiation: {}", chain.join(" -> "))
            }
            CoreError::UnknownRunBinding {
                module,
                binding,
                loc,
            } => write!(
                f,
                "binding `{binding}` not in interface of module `{module}` (run at {loc})"
            ),
            CoreError::NonConstantVarBinding { module, var, loc } => write!(
                f,
                "var binding `{var}` of module `{module}` is not a compile-time constant (run at {loc})"
            ),
            CoreError::UnboundSignal { signal, loc } => {
                write!(f, "signal `{signal}` used at {loc} is not declared in scope")
            }
            CoreError::UnknownTrapLabel { label, loc } => {
                write!(f, "break `{label}` at {loc} has no enclosing trap with that label")
            }
            CoreError::InstantaneousLoop { loc } => {
                write!(f, "loop body at {loc} may terminate instantaneously")
            }
            CoreError::ImmediateCountedDelay { loc } => {
                write!(f, "a delay at {loc} cannot be both immediate and counted")
            }
            CoreError::DuplicateSignal { signal } => {
                write!(f, "duplicate interface signal `{signal}`")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Non-fatal findings from the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A host variable is written in one parallel branch and accessed in a
    /// sibling branch, which the paper forbids ("provided they are not
    /// shared", §2.2.2) because it would break determinism.
    SharedVariable {
        /// The variable name.
        var: String,
    },
    /// An output signal is never emitted by the program.
    NeverEmitted {
        /// The signal name.
        signal: String,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::SharedVariable { var } => write!(
                f,
                "variable `{var}` is shared between parallel branches; scheduling order is not part of the semantics"
            ),
            Warning::NeverEmitted { signal } => {
                write!(f, "output signal `{signal}` is never emitted")
            }
        }
    }
}
