//! Static checks on linked programs.
//!
//! Three families of checks run before compilation:
//!
//! 1. **Scoping** — every signal used is declared, every `break` has its
//!    trap, no duplicate interface signals.
//! 2. **Instantaneous loops** — a `loop`/`every`/`do..every` body must not
//!    be able to terminate in the instant it starts (paper §3).
//! 3. **Shared variables** — host variables written in one parallel branch
//!    and touched in a sibling produce a warning (paper §2.2.2 forbids
//!    sharing because it would break determinism).

use crate::ast::{AtomBody, Delay, Stmt};
use crate::error::{CoreError, Warning};
use crate::module::LinkedProgram;
use std::collections::HashSet;

/// Result of a successful check: only warnings.
pub type CheckReport = Vec<Warning>;

/// Statically checks a linked program.
///
/// # Errors
///
/// Returns the first [`CoreError`] found (unbound signal, unknown trap
/// label, instantaneous loop body, immediate counted delay, duplicate
/// interface signal).
pub fn check(program: &LinkedProgram) -> Result<CheckReport, CoreError> {
    let mut seen = HashSet::new();
    for d in &program.interface {
        if !seen.insert(d.name.clone()) {
            return Err(CoreError::DuplicateSignal {
                signal: d.name.clone(),
            });
        }
    }
    let mut checker = Checker {
        warnings: Vec::new(),
    };
    let scope: HashSet<String> = program.interface.iter().map(|d| d.name.clone()).collect();
    checker.stmt(&program.body, &scope, &mut Vec::new())?;

    // Never-emitted outputs (informative only).
    let mut emitted = HashSet::new();
    collect_emissions(&program.body, &mut emitted);
    for d in &program.interface {
        if d.direction == crate::signal::Direction::Out && !emitted.contains(&d.name) {
            checker.warnings.push(Warning::NeverEmitted {
                signal: d.name.clone(),
            });
        }
    }
    Ok(checker.warnings)
}

fn collect_emissions(stmt: &Stmt, out: &mut HashSet<String>) {
    stmt.visit(&mut |s| match s {
        Stmt::Emit { signal, .. } | Stmt::Sustain { signal, .. } => {
            out.insert(signal.clone());
        }
        Stmt::Async { spec, .. } => {
            if let Some(sig) = &spec.done_signal {
                out.insert(sig.clone());
            }
        }
        Stmt::Run { binds, .. } => {
            // An un-inlined instantiation may emit any outer signal it
            // binds (the callee body is not visible here, so every bound
            // signal is credited conservatively). The linked pipeline
            // inlines `run` before this pass, but the function must stay
            // sound on raw bodies too.
            for b in binds {
                if let crate::ast::RunBind::Signal { outer, .. } = b {
                    out.insert(outer.clone());
                }
            }
        }
        _ => {}
    });
}

struct Checker {
    warnings: Vec<Warning>,
}

impl Checker {
    fn stmt(
        &mut self,
        stmt: &Stmt,
        scope: &HashSet<String>,
        traps: &mut Vec<String>,
    ) -> Result<(), CoreError> {
        match stmt {
            Stmt::Nothing | Stmt::Pause | Stmt::Halt => Ok(()),
            Stmt::Emit { signal, value, loc } | Stmt::Sustain { signal, value, loc } => {
                self.signal_in_scope(signal, scope, loc)?;
                if let Some(e) = value {
                    self.expr_reads(e, scope, loc)?;
                }
                Ok(())
            }
            Stmt::Atom { body, loc } => {
                for (s, _) in body.signal_reads() {
                    self.signal_in_scope(&s, scope, loc)?;
                }
                Ok(())
            }
            Stmt::Seq(ss) | Stmt::Par(ss) => {
                for s in ss {
                    self.stmt(s, scope, traps)?;
                }
                if let Stmt::Par(branches) = stmt {
                    self.check_shared_vars(branches);
                }
                Ok(())
            }
            Stmt::Loop(b) => {
                let flow = Flow::of(b);
                if flow.can_terminate_instantly {
                    return Err(CoreError::InstantaneousLoop {
                        loc: crate::ast::Loc::synthetic(),
                    });
                }
                self.stmt(b, scope, traps)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                loc,
            } => {
                self.expr_reads(cond, scope, loc)?;
                self.stmt(then_branch, scope, traps)?;
                self.stmt(else_branch, scope, traps)
            }
            Stmt::Await { delay, loc } => self.delay(delay, scope, loc),
            Stmt::Abort {
                delay, body, loc, ..
            }
            | Stmt::Suspend { delay, body, loc } => {
                self.delay(delay, scope, loc)?;
                self.stmt(body, scope, traps)
            }
            Stmt::Every { delay, body, loc } | Stmt::LoopEach { delay, body, loc } => {
                self.delay(delay, scope, loc)?;
                // The restarted body must not be instantaneous when the
                // restart is triggered; as in Esterel's `loop each`, an
                // instantaneous body is fine because the restart waits for
                // the next delay occurrence — no check needed here.
                self.stmt(body, scope, traps)
            }
            Stmt::Trap { label, body, .. } => {
                traps.push(label.clone());
                let r = self.stmt(body, scope, traps);
                traps.pop();
                r
            }
            Stmt::Exit { label, loc } => {
                if traps.iter().any(|t| t == label) {
                    Ok(())
                } else {
                    Err(CoreError::UnknownTrapLabel {
                        label: label.clone(),
                        loc: loc.clone(),
                    })
                }
            }
            Stmt::Local { decls, body, .. } => {
                let mut inner = scope.clone();
                for d in decls {
                    inner.insert(d.name.clone());
                }
                self.stmt(body, &inner, traps)
            }
            Stmt::Async { spec, loc } => {
                if let Some(sig) = &spec.done_signal {
                    self.signal_in_scope(sig, scope, loc)?;
                }
                Ok(())
            }
            Stmt::Run { module, loc, .. } => {
                // Linked programs contain no Run; treat as an internal error
                // surfaced as unknown module.
                Err(CoreError::UnknownModule {
                    module: module.clone(),
                    loc: loc.clone(),
                })
            }
        }
    }

    fn signal_in_scope(
        &self,
        name: &str,
        scope: &HashSet<String>,
        loc: &crate::ast::Loc,
    ) -> Result<(), CoreError> {
        if scope.contains(name) {
            Ok(())
        } else {
            Err(CoreError::UnboundSignal {
                signal: name.to_owned(),
                loc: loc.clone(),
            })
        }
    }

    fn expr_reads(
        &self,
        e: &crate::expr::Expr,
        scope: &HashSet<String>,
        loc: &crate::ast::Loc,
    ) -> Result<(), CoreError> {
        for (s, _) in e.signal_reads() {
            self.signal_in_scope(&s, scope, loc)?;
        }
        Ok(())
    }

    fn delay(
        &self,
        d: &Delay,
        scope: &HashSet<String>,
        loc: &crate::ast::Loc,
    ) -> Result<(), CoreError> {
        if d.immediate && d.count.is_some() {
            return Err(CoreError::ImmediateCountedDelay { loc: loc.clone() });
        }
        self.expr_reads(&d.cond, scope, loc)?;
        if let Some(n) = &d.count {
            self.expr_reads(n, scope, loc)?;
        }
        Ok(())
    }

    fn check_shared_vars(&mut self, branches: &[Stmt]) {
        let mut per_branch: Vec<(HashSet<String>, HashSet<String>)> = Vec::new();
        for b in branches {
            let mut reads = HashSet::new();
            let mut writes = HashSet::new();
            collect_vars(b, &mut reads, &mut writes);
            per_branch.push((reads, writes));
        }
        let mut flagged = HashSet::new();
        for (i, (_, writes_i)) in per_branch.iter().enumerate() {
            for (j, (reads_j, writes_j)) in per_branch.iter().enumerate() {
                if i == j {
                    continue;
                }
                for v in writes_i {
                    if (reads_j.contains(v) || writes_j.contains(v)) && flagged.insert(v.clone()) {
                        self.warnings.push(Warning::SharedVariable { var: v.clone() });
                    }
                }
            }
        }
    }
}

fn collect_vars(stmt: &Stmt, reads: &mut HashSet<String>, writes: &mut HashSet<String>) {
    fn expr_vars(e: &crate::expr::Expr, reads: &mut HashSet<String>) {
        match e {
            crate::expr::Expr::Var(v) => {
                reads.insert(v.clone());
            }
            crate::expr::Expr::Unary(_, x) | crate::expr::Expr::Field(x, _) => expr_vars(x, reads),
            crate::expr::Expr::Binary(_, a, b) | crate::expr::Expr::Index(a, b) => {
                expr_vars(a, reads);
                expr_vars(b, reads);
            }
            crate::expr::Expr::Ternary(c, a, b) => {
                expr_vars(c, reads);
                expr_vars(a, reads);
                expr_vars(b, reads);
            }
            crate::expr::Expr::Array(es) => es.iter().for_each(|e| expr_vars(e, reads)),
            _ => {}
        }
    }
    stmt.visit(&mut |s| match s {
        Stmt::Atom {
            body: AtomBody::Assign(v, e),
            ..
        } => {
            writes.insert(v.clone());
            expr_vars(e, reads);
        }
        Stmt::Atom {
            body: AtomBody::Log(e),
            ..
        }
        | Stmt::Emit { value: Some(e), .. }
        | Stmt::Sustain { value: Some(e), .. } => expr_vars(e, reads),
        Stmt::If { cond, .. } => expr_vars(cond, reads),
        Stmt::Await { delay, .. }
        | Stmt::Abort { delay, .. }
        | Stmt::Suspend { delay, .. }
        | Stmt::Every { delay, .. }
        | Stmt::LoopEach { delay, .. } => {
            expr_vars(&delay.cond, reads);
            if let Some(n) = &delay.count {
                expr_vars(n, reads);
            }
        }
        _ => {}
    });
}

/// Instantaneous-termination analysis (may-analysis, conservative).
#[derive(Debug, Clone, Default)]
pub struct Flow {
    /// The statement may terminate (completion code 0) in its start instant.
    pub can_terminate_instantly: bool,
    /// Trap labels the statement may exit in its start instant.
    pub instant_exits: HashSet<String>,
}

impl Flow {
    /// Computes the flow of a statement.
    pub fn of(stmt: &Stmt) -> Flow {
        match stmt {
            Stmt::Nothing | Stmt::Emit { .. } | Stmt::Atom { .. } => Flow {
                can_terminate_instantly: true,
                instant_exits: HashSet::new(),
            },
            Stmt::Pause | Stmt::Halt | Stmt::Sustain { .. } | Stmt::Async { .. } => Flow::default(),
            Stmt::Seq(ss) => {
                let mut can = true;
                let mut exits = HashSet::new();
                for s in ss {
                    if !can {
                        break;
                    }
                    let f = Flow::of(s);
                    exits.extend(f.instant_exits);
                    can = f.can_terminate_instantly;
                }
                Flow {
                    can_terminate_instantly: can,
                    instant_exits: exits,
                }
            }
            Stmt::Par(ss) => {
                let flows: Vec<Flow> = ss.iter().map(Flow::of).collect();
                Flow {
                    can_terminate_instantly: flows.iter().all(|f| f.can_terminate_instantly),
                    instant_exits: flows
                        .into_iter()
                        .flat_map(|f| f.instant_exits)
                        .collect(),
                }
            }
            Stmt::Loop(b) => Flow {
                can_terminate_instantly: false,
                instant_exits: Flow::of(b).instant_exits,
            },
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let a = Flow::of(then_branch);
                let b = Flow::of(else_branch);
                Flow {
                    can_terminate_instantly: a.can_terminate_instantly
                        || b.can_terminate_instantly,
                    instant_exits: a
                        .instant_exits
                        .union(&b.instant_exits)
                        .cloned()
                        .collect(),
                }
            }
            Stmt::Await { delay, .. } => Flow {
                can_terminate_instantly: delay.immediate,
                instant_exits: HashSet::new(),
            },
            Stmt::Abort { delay, body, .. } => {
                let f = Flow::of(body);
                Flow {
                    can_terminate_instantly: f.can_terminate_instantly || delay.immediate,
                    instant_exits: f.instant_exits,
                }
            }
            Stmt::Suspend { body, .. } => Flow::of(body),
            Stmt::Every { .. } => Flow::default(),
            Stmt::LoopEach { body, .. } => Flow {
                can_terminate_instantly: false,
                instant_exits: Flow::of(body).instant_exits,
            },
            Stmt::Trap { label, body, .. } => {
                let f = Flow::of(body);
                let mut exits = f.instant_exits.clone();
                let caught = exits.remove(label);
                Flow {
                    can_terminate_instantly: f.can_terminate_instantly || caught,
                    instant_exits: exits,
                }
            }
            Stmt::Exit { label, .. } => Flow {
                can_terminate_instantly: false,
                instant_exits: [label.clone()].into_iter().collect(),
            },
            Stmt::Local { body, .. } => Flow::of(body),
            Stmt::Run { .. } => Flow {
                // Unknown until linked; be conservative.
                can_terminate_instantly: true,
                instant_exits: HashSet::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Delay;
    use crate::expr::Expr;
    use crate::module::{link, Module, ModuleRegistry};
    use crate::signal::{Direction, SignalDecl};

    fn program(body: Stmt, signals: &[(&str, Direction)]) -> LinkedProgram {
        let mut m = Module::new("T");
        for (n, d) in signals {
            m = m.signal(SignalDecl::new(*n, *d));
        }
        link(&m.body(body), &ModuleRegistry::new()).expect("links")
    }

    #[test]
    fn unbound_signal_rejected() {
        let p = program(Stmt::emit("ghost"), &[]);
        assert!(matches!(
            check(&p).unwrap_err(),
            CoreError::UnboundSignal { .. }
        ));
    }

    #[test]
    fn local_signal_brings_name_into_scope() {
        let p = program(
            Stmt::local(
                vec![SignalDecl::new("s", Direction::Local)],
                Stmt::emit("s"),
            ),
            &[],
        );
        // Locals were freshened by the linker; emit target matches.
        assert!(check(&p).is_ok());
    }

    #[test]
    fn unknown_trap_label_rejected() {
        let p = program(Stmt::exit("Nope"), &[]);
        assert!(matches!(
            check(&p).unwrap_err(),
            CoreError::UnknownTrapLabel { .. }
        ));
        let ok = program(Stmt::trap("L", Stmt::exit("L")), &[]);
        assert!(check(&ok).is_ok());
    }

    #[test]
    fn instantaneous_loop_rejected() {
        let p = program(Stmt::loop_(Stmt::emit("s")), &[("s", Direction::Out)]);
        assert!(matches!(
            check(&p).unwrap_err(),
            CoreError::InstantaneousLoop { .. }
        ));
        // A pause fixes it.
        let ok = program(
            Stmt::loop_(Stmt::seq([Stmt::emit("s"), Stmt::Pause])),
            &[("s", Direction::Out)],
        );
        assert!(check(&ok).is_ok());
    }

    #[test]
    fn loop_exiting_trap_instantly_is_instantaneous_via_trap() {
        // trap L { loop { break L } } — loop body exits instantly; the trap
        // catches it so the trap may terminate instantly, but the loop
        // itself never "terminates", so this is legal Esterel.
        let p = program(Stmt::trap("L", Stmt::loop_(Stmt::exit("L"))), &[]);
        assert!(check(&p).is_ok());
    }

    #[test]
    fn immediate_counted_delay_rejected() {
        let d = Delay {
            immediate: true,
            count: Some(Expr::num(2.0)),
            cond: Expr::now("s"),
        };
        let p = program(Stmt::await_(d), &[("s", Direction::In)]);
        assert!(matches!(
            check(&p).unwrap_err(),
            CoreError::ImmediateCountedDelay { .. }
        ));
    }

    #[test]
    fn shared_variable_warning() {
        let p = program(
            Stmt::par([
                Stmt::assign("x", Expr::num(1.0)),
                Stmt::seq([
                    Stmt::Pause,
                    Stmt::if_(Expr::var("x").gt(Expr::num(0.0)), Stmt::emit("s")),
                ]),
            ]),
            &[("s", Direction::Out)],
        );
        let warnings = check(&p).expect("checks");
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::SharedVariable { var } if var == "x")));
    }

    #[test]
    fn never_emitted_output_warning() {
        let p = program(Stmt::Halt, &[("o", Direction::Out)]);
        let warnings = check(&p).expect("checks");
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::NeverEmitted { signal } if signal == "o")));
    }

    #[test]
    fn run_instantiated_emissions_are_credited() {
        // Regression: an output emitted only inside a `run`-instantiated
        // module must not warn `NeverEmitted`, whether the binding is an
        // explicit rename or implicit by-name.
        use crate::ast::RunBind;
        let inner = Module::new("Inner")
            .signal(SignalDecl::new("X", Direction::Out))
            .body(Stmt::seq([Stmt::emit("X"), Stmt::Halt]));
        let by_name = Module::new("ByName")
            .signal(SignalDecl::new("O", Direction::Out))
            .body(Stmt::seq([Stmt::emit("O"), Stmt::Halt]));
        let mut reg = ModuleRegistry::new();
        reg.register(inner);
        reg.register(by_name);

        let renamed = Module::new("Outer")
            .signal(SignalDecl::new("O", Direction::Out))
            .body(Stmt::run_with(
                "Inner",
                vec![RunBind::Signal { inner: "X".into(), outer: "O".into() }],
            ));
        let warnings = check(&link(&renamed, &reg).expect("links")).expect("checks");
        assert!(warnings.is_empty(), "renamed bind: {warnings:?}");

        let implicit = Module::new("Outer2")
            .signal(SignalDecl::new("O", Direction::Out))
            .body(Stmt::run("ByName"));
        let warnings = check(&link(&implicit, &reg).expect("links")).expect("checks");
        assert!(warnings.is_empty(), "implicit bind: {warnings:?}");
    }

    #[test]
    fn collect_emissions_credits_raw_run_bindings() {
        // `collect_emissions` must stay sound on bodies where `run` has
        // not been inlined: a bound outer signal counts as emitted.
        use crate::ast::RunBind;
        let body = Stmt::run_with(
            "M",
            vec![RunBind::Signal { inner: "X".into(), outer: "O".into() }],
        );
        let mut emitted = HashSet::new();
        collect_emissions(&body, &mut emitted);
        assert!(emitted.contains("O"), "{emitted:?}");
    }

    #[test]
    fn flow_analysis_cases() {
        assert!(Flow::of(&Stmt::Nothing).can_terminate_instantly);
        assert!(!Flow::of(&Stmt::Pause).can_terminate_instantly);
        assert!(
            Flow::of(&Stmt::seq([Stmt::emit("a"), Stmt::emit("b")])).can_terminate_instantly
        );
        assert!(!Flow::of(&Stmt::seq([Stmt::Pause, Stmt::emit("b")])).can_terminate_instantly);
        assert!(
            !Flow::of(&Stmt::par([Stmt::Nothing, Stmt::Pause])).can_terminate_instantly,
            "par waits for all branches"
        );
        let aborted_halt = Stmt::abort(Delay::immediate(Expr::now("s")), Stmt::Halt);
        assert!(Flow::of(&aborted_halt).can_terminate_instantly);
    }
}
