//! A small deterministic pseudo-random number generator.
//!
//! The repository must build and test **offline**, so instead of the
//! external `rand` crate the workload generators (`hiphop-bench`), the
//! Skini audience simulator and the property tests share this internal
//! module: a PCG-XSH-RR 64/32 generator ([O'Neill 2014]) seeded through
//! SplitMix64. It is *not* cryptographic — it only needs to be fast,
//! well-distributed and reproducible under a seed so experiments and
//! performances replay identically.
//!
//! [O'Neill 2014]: https://www.pcg-random.org/paper.html

/// A seeded PCG32 generator (PCG-XSH-RR 64/32).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step — used to spread a user seed over the full state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (same name as the `rand`
    /// API this module replaces, to keep call sites familiar).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut s = seed;
        let state = splitmix64(&mut s);
        let inc = splitmix64(&mut s) | 1; // stream must be odd
        let mut rng = Rng { state, inc };
        // Advance once so the first output depends on the whole state.
        rng.next_u32();
        rng
    }

    /// Exposes the raw `(state, inc)` pair so a generator mid-stream can
    /// be serialized (session snapshots) and later revived with
    /// [`Rng::from_parts`] at exactly the same point in its sequence.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from [`Rng::state_parts`] output without any
    /// seeding or warm-up advance — the next draw continues the original
    /// stream byte-for-byte.
    pub fn from_parts(state: u64, inc: u64) -> Rng {
        Rng { state, inc }
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a half-open range, like `rand`'s
    /// `gen_range(a..b)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: RangeInt>(&mut self, range: std::ops::Range<T>) -> T {
        let lo = range.start.to_i128();
        let hi = range.end.to_i128();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = (hi - lo) as u128;
        // Multiply-shift bounded draw (Lemire); the tiny modulo bias of a
        // plain `% span` would be acceptable too, but this is just as
        // short and exact enough for 64-bit spans.
        let draw = u128::from(self.next_u64()) % span;
        T::from_i128(lo + draw as i128)
    }
}

/// Integer types [`Rng::gen_range`] can draw.
pub trait RangeInt: Copy {
    /// Widen to `i128` for uniform range arithmetic.
    fn to_i128(self) -> i128;
    /// Narrow back after the draw (always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

range_int!(usize, u32, u64, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_parts_round_trip_mid_stream() {
        let mut a = Rng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let (state, inc) = a.state_parts();
        let mut b = Rng::from_parts(state, inc);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }
}
