//! The machine mailbox: how asynchronous host activities talk back to the
//! reactive machine.
//!
//! The paper's `async` bodies receive a `this` object with `notify(v)` and
//! `react({...})` (§2.2.4–2.2.5); both are *queued* operations — they
//! trigger future reactions, never re-enter the current one (JavaScript's
//! atomic execution guarantees this; in Rust the mailbox makes it
//! explicit). The host driver (the event loop, or a test) drains the
//! mailbox between reactions.

use crate::value::Value;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// An operation queued for the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineOp {
    /// An async instance completed with a value (paper: `this.notify(v)`).
    Notify {
        /// The async statement's circuit index.
        async_id: u32,
        /// The spawn generation; stale notifications (from a killed
        /// incarnation) are discarded.
        instance: u64,
        /// The completion value.
        value: Value,
    },
    /// Request a reaction with these inputs (paper: `this.react({...})`).
    React(Vec<(String, Value)>),
}

/// A shared FIFO of pending machine operations.
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    queue: Rc<RefCell<VecDeque<MachineOp>>>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }
    /// Queues an operation.
    pub fn push(&self, op: MachineOp) {
        self.queue.borrow_mut().push_back(op);
    }
    /// Pops the oldest pending operation.
    pub fn pop(&self) -> Option<MachineOp> {
        self.queue.borrow_mut().pop_front()
    }
    /// Number of pending operations.
    pub fn len(&self) -> usize {
        self.queue.borrow().len()
    }
    /// Whether no operation is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.borrow().is_empty()
    }
}

/// A cloneable, `'static` handle onto a running async instance — the
/// paper's `this` inside `async` bodies. Closures may stash it in timers
/// or promise callbacks and call [`AsyncHandle::notify`] much later; the
/// generation check discards notifications that arrive after the instance
/// was preempted (this is what makes the paper's JavaScript `Rconn`
/// request counter unnecessary, §2.2.4).
#[derive(Debug, Clone)]
pub struct AsyncHandle {
    mailbox: Mailbox,
    async_id: u32,
    instance: u64,
    state: Rc<RefCell<Value>>,
}

impl AsyncHandle {
    /// Creates a handle (called by the runtime when spawning).
    pub fn new(mailbox: Mailbox, async_id: u32, instance: u64, state: Rc<RefCell<Value>>) -> Self {
        AsyncHandle {
            mailbox,
            async_id,
            instance,
            state,
        }
    }

    /// Signals completion: the async statement terminates at the next
    /// reaction, emitting its completion signal with `value`.
    pub fn notify(&self, value: impl Into<Value>) {
        self.mailbox.push(MachineOp::Notify {
            async_id: self.async_id,
            instance: self.instance,
            value: value.into(),
        });
    }

    /// Queues a full machine reaction with the given inputs.
    pub fn react(&self, inputs: Vec<(String, Value)>) {
        self.mailbox.push(MachineOp::React(inputs));
    }

    /// Stores per-instance host state (the paper's `this.intv`).
    pub fn set_state(&self, value: impl Into<Value>) {
        *self.state.borrow_mut() = value.into();
    }

    /// Reads back the per-instance host state.
    pub fn state(&self) -> Value {
        self.state.borrow().clone()
    }

    /// The spawn generation of this handle.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// The async statement this handle belongs to; `(async_id, instance)`
    /// uniquely identifies a running activity (the supervisor keys its
    /// registry on the pair).
    pub fn async_id(&self) -> u32 {
        self.async_id
    }
}

impl fmt::Display for AsyncHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "async#{}@{}", self.async_id, self.instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_fifo() {
        let m = Mailbox::new();
        assert!(m.is_empty());
        m.push(MachineOp::React(vec![("a".into(), Value::Bool(true))]));
        m.push(MachineOp::React(vec![("b".into(), Value::Bool(true))]));
        assert_eq!(m.len(), 2);
        match m.pop() {
            Some(MachineOp::React(v)) => assert_eq!(v[0].0, "a"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handle_routes_notify_with_generation() {
        let m = Mailbox::new();
        let h = AsyncHandle::new(m.clone(), 4, 9, Rc::new(RefCell::new(Value::Null)));
        h.notify(42i64);
        assert_eq!(
            m.pop(),
            Some(MachineOp::Notify {
                async_id: 4,
                instance: 9,
                value: Value::Num(42.0)
            })
        );
    }

    #[test]
    fn handle_state_roundtrip() {
        let h = AsyncHandle::new(Mailbox::new(), 0, 0, Rc::new(RefCell::new(Value::Null)));
        h.set_state(7i64);
        assert_eq!(h.state(), Value::Num(7.0));
    }
}
