//! Desugaring of derived statements into the kernel the compiler
//! translates.
//!
//! Following Esterel practice (paper §5: "expands all nested control
//! structures"), the derived temporal statements reduce to a small kernel:
//!
//! | surface | kernel expansion |
//! |---|---|
//! | `await d` | `abort (d) { halt }` |
//! | `every (d) { p }` | `await d; do { p } every d'` (d' non-immediate) |
//! | `do { p } every (d)` | `loop { abort (d) { p; halt } }` |
//! | `sustain S(e)` | `loop { emit S(e); yield }` |
//!
//! `abort`, `weakabort`, `suspend`, traps, `loop`, `par`, `async` and
//! `halt` are translated directly by the compiler (direct circuits are
//! smaller than their kernel encodings, which matters for the paper's
//! circuit-size measurements).

use crate::ast::{Delay, Stmt};

/// Kernel statements after [`desugar`]: everything except
/// [`Stmt::Await`], [`Stmt::Every`], [`Stmt::LoopEach`], [`Stmt::Sustain`]
/// and [`Stmt::Run`] (removed earlier, by linking).
pub fn desugar(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Nothing | Stmt::Pause | Stmt::Halt | Stmt::Emit { .. } | Stmt::Atom { .. } => {
            stmt.clone()
        }
        Stmt::Sustain { signal, value, loc } => Stmt::loop_(Stmt::seq([
            Stmt::Emit {
                signal: signal.clone(),
                value: value.clone(),
                loc: loc.clone(),
            },
            Stmt::Pause,
        ])),
        Stmt::Seq(ss) => Stmt::seq(ss.iter().map(desugar)),
        Stmt::Par(ss) => Stmt::Par(ss.iter().map(desugar).collect()),
        Stmt::Loop(b) => Stmt::loop_(desugar(b)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            loc,
        } => Stmt::If {
            cond: cond.clone(),
            then_branch: Box::new(desugar(then_branch)),
            else_branch: Box::new(desugar(else_branch)),
            loc: loc.clone(),
        },
        Stmt::Await { delay, loc } => Stmt::Abort {
            delay: delay.clone(),
            weak: false,
            body: Box::new(Stmt::Halt),
            loc: loc.clone(),
        },
        Stmt::Abort {
            delay,
            weak,
            body,
            loc,
        } => Stmt::Abort {
            delay: delay.clone(),
            weak: *weak,
            body: Box::new(desugar(body)),
            loc: loc.clone(),
        },
        Stmt::Suspend { delay, body, loc } => Stmt::Suspend {
            delay: delay.clone(),
            body: Box::new(desugar(body)),
            loc: loc.clone(),
        },
        Stmt::Every { delay, body, loc } => {
            // `every (d) p` = `await d; loop { abort (d) { p; halt } }`.
            // The restart delay drops `immediate` (the occurrence that
            // starts the body must not instantly re-kill it).
            let restart = Delay {
                immediate: false,
                count: delay.count.clone(),
                cond: delay.cond.clone(),
            };
            Stmt::seq([
                desugar(&Stmt::Await {
                    delay: delay.clone(),
                    loc: loc.clone(),
                }),
                desugar(&Stmt::LoopEach {
                    delay: restart,
                    body: body.clone(),
                    loc: loc.clone(),
                }),
            ])
        }
        Stmt::LoopEach { delay, body, loc } => Stmt::loop_(Stmt::Abort {
            delay: delay.clone(),
            weak: false,
            body: Box::new(Stmt::seq([desugar(body), Stmt::Halt])),
            loc: loc.clone(),
        }),
        Stmt::Trap { label, body, loc } => Stmt::Trap {
            label: label.clone(),
            body: Box::new(desugar(body)),
            loc: loc.clone(),
        },
        Stmt::Exit { .. } => stmt.clone(),
        Stmt::Local { decls, body, loc } => Stmt::Local {
            decls: decls.clone(),
            body: Box::new(desugar(body)),
            loc: loc.clone(),
        },
        Stmt::Async { .. } => stmt.clone(),
        Stmt::Run { .. } => {
            unreachable!("Run statements must be linked away before desugaring")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn await_becomes_abort_of_halt() {
        let s = desugar(&Stmt::await_(Delay::cond(Expr::now("s"))));
        match s {
            Stmt::Abort { weak, body, .. } => {
                assert!(!weak);
                assert_eq!(*body, Stmt::Halt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_expands_to_await_then_loop() {
        let s = desugar(&Stmt::every(
            Delay::cond(Expr::now("login")),
            Stmt::emit("go"),
        ));
        let text = format!("{s}");
        assert!(text.contains("loop {"), "{text}");
        // Both the initial await and the restart lower to aborts on the
        // same condition.
        assert_eq!(text.matches("abort (login.now)").count(), 2, "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn every_immediate_restart_is_delayed() {
        let s = desugar(&Stmt::every(
            Delay::immediate(Expr::now("t")),
            Stmt::emit("go"),
        ));
        let text = format!("{s}");
        // The initial await keeps `immediate`...
        assert!(text.contains("abort (immediate t.now)"), "{text}");
        // ...but the restart abort must not be immediate.
        assert_eq!(text.matches("abort (immediate").count(), 1, "{text}");
        assert_eq!(text.matches("abort (t.now)").count(), 1, "{text}");
    }

    #[test]
    fn sustain_expands_to_loop_emit_pause() {
        let s = desugar(&Stmt::sustain("alarm"));
        let text = format!("{s}");
        assert!(text.contains("emit alarm()"), "{text}");
        assert!(text.contains("yield"), "{text}");
    }

    #[test]
    fn nested_derived_forms_fully_lowered() {
        let s = Stmt::every(
            Delay::cond(Expr::now("a")),
            Stmt::loop_each(Delay::cond(Expr::now("b")), Stmt::sustain("x")),
        );
        let k = desugar(&s);
        k.visit(&mut |s| {
            assert!(
                !matches!(
                    s,
                    Stmt::Await { .. }
                        | Stmt::Every { .. }
                        | Stmt::LoopEach { .. }
                        | Stmt::Sustain { .. }
                ),
                "derived statement survived desugaring: {s}"
            );
        });
    }
}
