//! Parsing the paper's actual listings (§2–§4) and checking they compile
//! to runnable machines.

use hiphop_core::prelude::*;
use hiphop_lang::{parse_file, parse_program, HostRegistry};
use hiphop_runtime::Machine;

fn compile(src: &str, main: &str) -> Machine {
    let hosts = HostRegistry::new();
    let (m, reg) = parse_program(src, main, &hosts).expect("parses");
    let compiled = hiphop_compiler::compile_module(&m, &reg).expect("compiles");
    Machine::new(compiled.circuit).expect("finalized circuit")
}

#[test]
fn identity_module_from_paper() {
    // §2.2.3, verbatim shape.
    let src = r#"
        hiphop module Identity(in name, in passwd, out enableLogin) {
           do {
              emit enableLogin(
                 name.nowval.length >= 2 && passwd.nowval.length >= 2);
           } every (name.now || passwd.now)
        }
    "#;
    let mut m = compile(src, "Identity");
    m.react().unwrap();
    let r = m
        .react_with(&[("name", Value::from("jo")), ("passwd", Value::from("pw"))])
        .unwrap();
    assert_eq!(r.value("enableLogin"), Value::Bool(true));
    let r = m.react_with(&[("passwd", Value::from("p"))]).unwrap();
    assert_eq!(r.value("enableLogin"), Value::Bool(false));
}

#[test]
fn freeze_module_from_paper() {
    // §3 Freeze, with the Timer replaced by counting tmo input ticks so
    // the test stays parser-focused.
    let src = r#"
        hiphop module Freeze(var max, var attempts, sig, tmo, freeze, restart) {
           do {
              await count(attempts, sig.now);
              emit freeze();
              await (tmo.nowval > max);
              emit restart();
           } every (sig.now && sig.nowval)
        }
    "#;
    let hosts = HostRegistry::new();
    let (freeze, _) = parse_program(src, "Freeze", &hosts).expect("parses");
    assert_eq!(freeze.vars.len(), 2);
    assert_eq!(freeze.interface.len(), 4);

    // Instantiate with max=5, attempts=3 as in MainV2.
    let mut reg = ModuleRegistry::new();
    reg.register(freeze);
    let main = Module::new("Main")
        .input(SignalDecl::new("connected", Direction::In))
        .input(SignalDecl::new("tmo", Direction::In).with_init(0i64))
        .output(SignalDecl::new("freeze", Direction::Out))
        .output(SignalDecl::new("restart", Direction::Out))
        .body(Stmt::run_with(
            "Freeze",
            vec![
                RunBind::Var {
                    name: "max".into(),
                    value: Expr::num(5.0),
                },
                RunBind::Var {
                    name: "attempts".into(),
                    value: Expr::num(3.0),
                },
                RunBind::Signal {
                    inner: "sig".into(),
                    outer: "connected".into(),
                },
            ],
        ));
    let compiled = hiphop_compiler::compile_module(&main, &reg).expect("compiles");
    let mut m = Machine::new(compiled.circuit).expect("finalized circuit");
    m.react().unwrap();
    // Three failed connections (connected with value false) → freeze.
    let f = Value::Bool(false);
    assert!(!m.react_with(&[("connected", f.clone())]).unwrap().present("freeze"));
    assert!(!m.react_with(&[("connected", f.clone())]).unwrap().present("freeze"));
    let r = m.react_with(&[("connected", f.clone())]).unwrap();
    assert!(r.present("freeze"), "third failure freezes");
    // Quarantine ends when tmo exceeds max.
    assert!(!m.react_with(&[("tmo", Value::Num(3.0))]).unwrap().present("restart"));
    let r = m.react_with(&[("tmo", Value::Num(6.0))]).unwrap();
    assert!(r.present("restart"));
}

#[test]
fn button_module_from_paper() {
    // §4.1.2 Button, verbatim shape.
    let src = r#"
        hiphop module Button(var d, in Tick, in B, out Active, out Alert) {
           emit Active(true); emit Alert(false);
           abort (B.now) {
              await count(d, Tick.now);
              do { emit Alert(true); } every (Tick.now)
           }
           emit Alert(false); emit Active(false);
        }
    "#;
    let hosts = HostRegistry::new();
    let (button, _) = parse_program(src, "Button", &hosts).expect("parses");
    let mut reg = ModuleRegistry::new();
    reg.register(button);
    let main = Module::new("Main")
        .input(SignalDecl::new("Tick", Direction::In))
        .input(SignalDecl::new("B", Direction::In))
        .output(SignalDecl::new("Active", Direction::Out).with_init(false))
        .output(SignalDecl::new("Alert", Direction::Out).with_init(false))
        .body(Stmt::run_with(
            "Button",
            vec![RunBind::Var {
                name: "d".into(),
                value: Expr::num(2.0),
            }],
        ));
    let compiled = hiphop_compiler::compile_module(&main, &reg).expect("compiles");
    let mut m = Machine::new(compiled.circuit).expect("finalized circuit");
    let r = m.react().unwrap();
    assert_eq!(r.value("Active"), Value::Bool(true));
    let t = Value::Bool(true);
    // Two ticks: alert starts.
    m.react_with(&[("Tick", t.clone())]).unwrap();
    let r = m.react_with(&[("Tick", t.clone())]).unwrap();
    assert_eq!(r.value("Alert"), Value::Bool(true), "late: alert raised");
    // Press the button: module completes, Active(false).
    let r = m.react_with(&[("B", t.clone())]).unwrap();
    assert_eq!(r.value("Active"), Value::Bool(false));
    assert_eq!(r.value("Alert"), Value::Bool(false));
    assert!(r.terminated);
}

#[test]
fn skini_score_excerpt_from_paper() {
    // §4.2.2 score excerpt, verbatim shape.
    let src = r#"
        module Score(in seconds = 0, in CellosIn, in TromboneDone,
                     out ActivateCellos, out RunTrombones) {
           abort (seconds.nowval === 20) {
              emit ActivateCellos(true);
              await count(5, CellosIn.now);
              emit RunTrombones();
              halt;
           }
        }
    "#;
    let mut m = compile(src, "Score");
    let r = m.react().unwrap();
    assert_eq!(r.value("ActivateCellos"), Value::Bool(true));
    // Five cello selections enable the trombones.
    for i in 0..5 {
        let r = m.react_with(&[("CellosIn", Value::Num(i as f64))]).unwrap();
        assert_eq!(r.present("RunTrombones"), i == 4, "selection {i}");
    }
    // Timeout at 20 seconds kills the score.
    let r = m.react_with(&[("seconds", Value::Num(20.0))]).unwrap();
    assert!(r.terminated);
}

#[test]
fn labelled_break_parses_as_trap() {
    let src = r#"
        module M(in A, out W) {
           DoseOK: fork {
              await (A.now);
              break DoseOK;
           } par {
              sustain W();
           }
        }
    "#;
    let mut m = compile(src, "M");
    assert!(m.react().unwrap().present("W"));
    let r = m.react_with(&[("A", Value::Bool(true))]).unwrap();
    assert!(r.present("W") && r.terminated);
}

#[test]
fn async_with_host_hooks() {
    let mut hosts = HostRegistry::new();
    hosts.async_hook("instant-done", |ctx| {
        ctx.handle.notify(Value::from("done!"));
    });
    let flag = std::rc::Rc::new(std::cell::Cell::new(false));
    let f = flag.clone();
    hosts.async_hook("record-kill", move |_| f.set(true));
    let src = r#"
        module M(in stop, inout result, out got) {
           abort (stop.now) {
              async result { host "instant-done" } kill { host "record-kill" }
              emit got();
              halt;
           }
        }
    "#;
    let (m, reg) = parse_program(src, "M", &hosts).expect("parses");
    let compiled = hiphop_compiler::compile_module(&m, &reg).expect("compiles");
    let mut machine = Machine::new(compiled.circuit).expect("finalized circuit");
    machine.react().unwrap();
    // The spawn hook notified immediately; drain turns it into a reaction.
    let reactions = machine.drain().unwrap();
    assert_eq!(reactions.len(), 1);
    assert!(reactions[0].present("got"));
    assert_eq!(machine.nowval("result"), Value::from("done!"));
    assert!(!flag.get(), "completed async is not killed");
}

#[test]
fn multiple_modules_and_implements() {
    let src = r#"
        module Base(in a, out b) { halt; }
        module Derived(in extra) implements Base {
           every (a.now) { emit b(); }
        }
    "#;
    let reg = parse_file(src, &HostRegistry::new()).expect("parses");
    let derived = reg.get("Derived").expect("registered");
    assert_eq!(derived.interface.len(), 3, "extra + inherited a, b");
    assert!(derived.find_signal("a").is_some());
}

#[test]
fn local_signal_scopes_to_rest_of_block() {
    let src = r#"
        module M(out o) {
           signal s;
           fork { emit s(); } par { if (s.now) { emit o(); } }
        }
    "#;
    let mut m = compile(src, "M");
    assert!(m.react().unwrap().present("o"));
}

#[test]
fn hop_atoms_assign_and_log() {
    let src = r#"
        module M(out o) {
           hop { x = 40 + 2; log("starting"); }
           if (x == 42) { emit o(); }
        }
    "#;
    let mut m = compile(src, "M");
    assert!(m.react().unwrap().present("o"));
    assert_eq!(m.log(), ["starting"]);
    assert_eq!(m.var("x"), Value::Num(42.0));
}

#[test]
fn parse_errors_are_located() {
    let hosts = HostRegistry::new();
    let e = parse_file("module M() { emit ; }", &hosts).unwrap_err();
    assert!(e.to_string().contains("1:19"), "{e}");
    let e = parse_file("module M() { frobnicate x; }", &hosts).unwrap_err();
    assert!(e.to_string().contains("unknown statement"), "{e}");
    let e = parse_file(
        "module M() { async { host \"nope\" } }",
        &hosts,
    )
    .unwrap_err();
    assert!(e.to_string().contains("unregistered host hook"), "{e}");
    let e = parse_file("module M(in a) implements Ghost { }", &hosts).unwrap_err();
    assert!(e.to_string().contains("unknown module"), "{e}");
}

#[test]
fn pretty_print_roundtrip() {
    // parse → pretty-print → reparse gives the same statement tree (for
    // the host-free fragment).
    let src = r#"
        module M(in a, in b, out o, out w) {
           every (a.now) {
              L: fork {
                 await count(3, b.now);
                 break L;
              } par {
                 do { emit o(a.nowval + 1); } every (b.now)
              }
              suspend (b.now) { sustain w(); }
           }
        }
    "#;
    let hosts = HostRegistry::new();
    let (m1, _) = parse_program(src, "M", &hosts).expect("parses");
    let printed = format!("module M(in a, in b, out o, out w) {{\n{}\n}}", m1.body);
    let (m2, _) = parse_program(&printed, "M", &hosts)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    // Locations differ between the two parses; compare the printed form,
    // which is location-independent.
    assert_eq!(
        m1.body.to_string(),
        m2.body.to_string(),
        "printed:\n{printed}"
    );
}

#[test]
fn expression_precedence() {
    let src = r#"
        module M(in a, out o) {
           if (1 + 2 * 3 == 7 && !(a.now) || false) { emit o(); }
        }
    "#;
    let mut m = compile(src, "M");
    assert!(m.react().unwrap().present("o"), "precedence: 1+2*3 == 7");
}

#[test]
fn builtin_calls_in_textual_expressions() {
    let src = r#"
        module M(in x = 0, out o = "") {
           do {
              emit o(upper(concat("v=", min(x.nowval, 100))));
           } every (x.now)
        }
    "#;
    let mut m = compile(src, "M");
    m.react().unwrap();
    let r = m.react_with(&[("x", Value::Num(250.0))]).unwrap();
    assert_eq!(r.value("o"), Value::from("V=100"));
    let r = m.react_with(&[("x", Value::Num(7.0))]).unwrap();
    assert_eq!(r.value("o"), Value::from("V=7"));
}
