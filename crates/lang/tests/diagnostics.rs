//! Diagnostics quality: parser locations must flow through compilation
//! into runtime causality reports, so a textual program's deadlock names
//! its source lines and signals (paper §5.2: "an appropriate error
//! message").

use hiphop_lang::{parse_program, HostRegistry};
use hiphop_runtime::{Machine, RuntimeError};

#[test]
fn causality_report_names_signal_and_location() {
    let src = "module M() {\n   signal X;\n   if (!X.now) { emit X(); }\n}";
    let (m, reg) = parse_program(src, "M", &HostRegistry::new()).expect("parses");
    let compiled = hiphop_compiler::compile_module(&m, &reg).expect("compiles");
    assert!(compiled.cycle_warnings > 0, "static warning first");
    // The paradox is provably non-constructive, so construction itself
    // rejects it — with the same located report a runtime stall would carry.
    let err = Machine::new(compiled.circuit).unwrap_err();
    let RuntimeError::Causality { cycle, .. } = &err else {
        panic!("expected causality, got {err}");
    };
    let text = err.to_string();
    // The local signal X appears (with its linked unique suffix).
    assert!(text.contains("signal X"), "{text}");
    // The emit's parser location (line 3) appears on some cycle net.
    assert!(
        cycle.iter().any(|n| n.loc.starts_with("3:")),
        "expected a net at line 3: {text}"
    );
}

#[test]
fn multiple_emission_error_names_the_signal() {
    let src = r#"
        module M(out v = 0) {
           fork { emit v(1); } par { emit v(2); }
        }
    "#;
    let (m, reg) = parse_program(src, "M", &HostRegistry::new()).expect("parses");
    let compiled = hiphop_compiler::compile_module(&m, &reg).expect("compiles");
    let mut machine = Machine::new(compiled.circuit).expect("finalized circuit");
    let err = machine.react().unwrap_err();
    assert!(
        matches!(err, RuntimeError::MultipleEmit { ref signal } if signal == "v"),
        "{err}"
    );
    assert!(err.to_string().contains("combine"), "{err}");
}

#[test]
fn check_errors_carry_parser_positions() {
    // `break` without a trap, at a known position.
    let src = "module M() {\n   break Nowhere;\n}";
    let (m, reg) = parse_program(src, "M", &HostRegistry::new()).expect("parses");
    let err = hiphop_compiler::compile_module(&m, &reg).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("Nowhere"), "{text}");
    assert!(text.contains("2:"), "line number expected: {text}");
}
