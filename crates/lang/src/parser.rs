//! Recursive-descent parser: concrete HipHop syntax → core AST modules.
//!
//! The grammar follows the paper's examples:
//!
//! ```text
//! module Main(in name = "", in passwd = "", in login, in logout,
//!             out enableLogin, out connState = "disconn",
//!             inout time = 0, inout connected) {
//!    fork {
//!       run Identity(...);
//!    } par {
//!       every (login.now) {
//!          run Authenticate(...);
//!          if (connected.nowval) { run Session(...); }
//!          else { emit connState("error"); }
//!       }
//!    }
//! }
//! ```
//!
//! Statement keywords are contextual identifiers; `yield` is `pause`;
//! labels (`DoseOK: fork { ... }`) are traps exited by `break DoseOK;`.

use crate::error::ParseError;
use crate::host::HostRegistry;
use crate::lexer::lex;
use crate::token::{Spanned, Tok};
use hiphop_core::ast::{AsyncSpec, AtomBody, Delay, Loc, RunBind, Stmt};
use hiphop_core::expr::{BinOp, Expr, UnOp};
use hiphop_core::module::{Module, ModuleRegistry, VarDecl};
use hiphop_core::signal::{Combine, Direction, SignalDecl};
use hiphop_core::value::Value;

/// Parses a source file containing one or more modules; `implements`
/// clauses are resolved against earlier modules of the same file.
///
/// # Errors
///
/// Returns the first [`ParseError`] with its source position.
pub fn parse_file(src: &str, hosts: &HostRegistry) -> Result<ModuleRegistry, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        hosts,
    };
    let mut registry = ModuleRegistry::new();
    while !p.at_eof() {
        let m = p.module(&registry)?;
        registry.register(m);
    }
    Ok(registry)
}

/// Parses a source file and returns the module named `main` along with
/// the registry (convenience for single-program files).
///
/// # Errors
///
/// Fails on parse errors or when `main` is absent.
pub fn parse_program(
    src: &str,
    main: &str,
    hosts: &HostRegistry,
) -> Result<(Module, ModuleRegistry), ParseError> {
    let registry = parse_file(src, hosts)?;
    let m = registry
        .get(main)
        .cloned()
        .ok_or_else(|| ParseError::new(format!("no module named `{main}`"), 1, 1))?;
    Ok((m, registry))
}

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    hosts: &'a HostRegistry,
}

impl Parser<'_> {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }
    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }
    fn at_eof(&self) -> bool {
        self.peek().tok == Tok::Eof
    }
    fn loc(&self) -> Loc {
        Loc::new(self.peek().line, self.peek().col)
    }
    fn bump(&mut self) -> Spanned {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }
    fn err(&self, msg: impl Into<String>) -> ParseError {
        let s = self.peek();
        ParseError::new(msg, s.line, s.col)
    }
    fn expect(&mut self, tok: Tok) -> Result<Spanned, ParseError> {
        if self.peek().tok == tok {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek().tok)))
        }
    }
    fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek().tok)))
        }
    }
    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Modules.

    fn module(&mut self, earlier: &ModuleRegistry) -> Result<Module, ParseError> {
        if self.eat_kw("hiphop") {
            // Optional `hiphop` prefix as in the paper listings.
        }
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut module = Module::new(name);
        self.expect(Tok::LParen)?;
        if self.peek().tok != Tok::RParen {
            loop {
                let (decl, var) = self.interface_item()?;
                if let Some(v) = var {
                    module = module.var(v);
                } else if let Some(d) = decl {
                    module = module.signal(d);
                }
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if self.eat_kw("implements") {
            let base = self.ident()?;
            let other = earlier
                .get(&base)
                .ok_or_else(|| self.err(format!("implements unknown module `{base}`")))?;
            module = module.implements(other);
        }
        self.expect(Tok::LBrace)?;
        let body = self.stmts_until_rbrace()?;
        self.expect(Tok::RBrace)?;
        Ok(module.body(body))
    }

    fn interface_item(&mut self) -> Result<(Option<SignalDecl>, Option<VarDecl>), ParseError> {
        if self.eat_kw("var") {
            let name = self.ident()?;
            let default = if self.peek().tok == Tok::Assign {
                self.bump();
                Some(self.literal()?)
            } else {
                None
            };
            return Ok((
                None,
                Some(VarDecl {
                    name,
                    default,
                }),
            ));
        }
        let direction = if self.eat_kw("in") {
            Direction::In
        } else if self.eat_kw("out") {
            Direction::Out
        } else if self.eat_kw("inout") {
            Direction::InOut
        } else {
            // Direction-less interface signals (paper: `module
            // Session(connState, time, logout)`) are inout so they can be
            // bound either way by `run`.
            Direction::InOut
        };
        let name = self.ident()?;
        let mut decl = SignalDecl::new(name, direction);
        if self.peek().tok == Tok::Assign {
            self.bump();
            decl.init = Some(self.literal()?);
        }
        if self.eat_kw("combine") {
            decl.combine = Some(self.combine_op()?);
        }
        Ok((Some(decl), None))
    }

    fn combine_op(&mut self) -> Result<Combine, ParseError> {
        let c = match &self.peek().tok {
            Tok::Plus => Combine::Plus,
            Tok::Star => Combine::Mul,
            Tok::Ident(s) if s == "and" => Combine::And,
            Tok::Ident(s) if s == "or" => Combine::Or,
            Tok::Ident(s) if s == "min" => Combine::Min,
            Tok::Ident(s) if s == "max" => Combine::Max,
            Tok::Ident(s) if s == "append" => Combine::Append,
            other => return Err(self.err(format!("expected combine operator, found {other}"))),
        };
        self.bump();
        Ok(c)
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        let v = match &self.peek().tok {
            Tok::Num(n) => Value::Num(*n),
            Tok::Str(s) => Value::Str(s.clone()),
            Tok::Ident(s) if s == "true" => Value::Bool(true),
            Tok::Ident(s) if s == "false" => Value::Bool(false),
            Tok::Ident(s) if s == "null" => Value::Null,
            Tok::Minus => {
                self.bump();
                match &self.peek().tok {
                    Tok::Num(n) => {
                        let v = Value::Num(-n);
                        self.bump();
                        return Ok(v);
                    }
                    other => return Err(self.err(format!("expected number, found {other}"))),
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while self.peek().tok != Tok::RBracket {
                    items.push(self.literal()?);
                    if self.peek().tok == Tok::Comma {
                        self.bump();
                    }
                }
                self.bump();
                return Ok(Value::Arr(items));
            }
            other => return Err(self.err(format!("expected literal, found {other}"))),
        };
        self.bump();
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Statements.

    fn stmts_until_rbrace(&mut self) -> Result<Stmt, ParseError> {
        let mut out = Vec::new();
        while self.peek().tok != Tok::RBrace && !self.at_eof() {
            out.push(self.stmt()?);
        }
        Ok(Stmt::seq(out))
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::LBrace)?;
        let s = self.stmts_until_rbrace()?;
        self.expect(Tok::RBrace)?;
        Ok(s)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.loc();
        match &self.peek().tok {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Nothing)
            }
            Tok::LBrace => self.block(),
            Tok::Ident(kw) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "yield" | "pause" => {
                        self.bump();
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Pause)
                    }
                    "halt" => {
                        self.bump();
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Halt)
                    }
                    "emit" | "sustain" => {
                        self.bump();
                        let signal = self.ident()?;
                        self.expect(Tok::LParen)?;
                        let value = if self.peek().tok == Tok::RParen {
                            None
                        } else {
                            Some(self.expr()?)
                        };
                        self.expect(Tok::RParen)?;
                        self.expect(Tok::Semi)?;
                        Ok(if kw == "emit" {
                            Stmt::Emit { signal, value, loc }
                        } else {
                            Stmt::Sustain { signal, value, loc }
                        })
                    }
                    "hop" => self.hop_stmt(loc),
                    "fork" => {
                        self.bump();
                        let mut branches = vec![self.block()?];
                        while self.eat_kw("par") {
                            branches.push(self.block()?);
                        }
                        Ok(Stmt::par(branches))
                    }
                    "loop" => {
                        self.bump();
                        Ok(Stmt::loop_(self.block()?))
                    }
                    "if" => {
                        self.bump();
                        self.expect(Tok::LParen)?;
                        let cond = self.expr()?;
                        self.expect(Tok::RParen)?;
                        let then_branch = self.block()?;
                        let else_branch = if self.eat_kw("else") {
                            if self.is_kw("if") {
                                self.stmt()?
                            } else {
                                self.block()?
                            }
                        } else {
                            Stmt::Nothing
                        };
                        Ok(Stmt::If {
                            cond,
                            then_branch: Box::new(then_branch),
                            else_branch: Box::new(else_branch),
                            loc,
                        })
                    }
                    "await" => {
                        self.bump();
                        let delay = self.delay()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Await { delay, loc })
                    }
                    "abort" | "weakabort" => {
                        self.bump();
                        let delay = self.delay()?;
                        let body = self.block()?;
                        Ok(Stmt::Abort {
                            delay,
                            weak: kw == "weakabort",
                            body: Box::new(body),
                            loc,
                        })
                    }
                    "suspend" => {
                        self.bump();
                        let delay = self.delay()?;
                        let body = self.block()?;
                        Ok(Stmt::Suspend {
                            delay,
                            body: Box::new(body),
                            loc,
                        })
                    }
                    "every" => {
                        self.bump();
                        let delay = self.delay()?;
                        let body = self.block()?;
                        Ok(Stmt::Every {
                            delay,
                            body: Box::new(body),
                            loc,
                        })
                    }
                    "do" => {
                        self.bump();
                        let body = self.block()?;
                        self.expect_kw("every")?;
                        let delay = self.delay()?;
                        // Paper style: `do { ... } every (cond)` without a
                        // trailing semicolon.
                        if self.peek().tok == Tok::Semi {
                            self.bump();
                        }
                        Ok(Stmt::LoopEach {
                            delay,
                            body: Box::new(body),
                            loc,
                        })
                    }
                    "signal" => {
                        self.bump();
                        let mut decls = Vec::new();
                        loop {
                            let name = self.ident()?;
                            let mut d = SignalDecl::new(name, Direction::Local);
                            if self.peek().tok == Tok::Assign {
                                self.bump();
                                d.init = Some(self.literal()?);
                            }
                            if self.eat_kw("combine") {
                                d.combine = Some(self.combine_op()?);
                            }
                            decls.push(d);
                            if self.peek().tok == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.expect(Tok::Semi)?;
                        // The declaration scopes over the remainder of the
                        // enclosing block.
                        let rest = self.stmts_until_rbrace()?;
                        Ok(Stmt::Local {
                            decls,
                            body: Box::new(rest),
                            loc,
                        })
                    }
                    "break" => {
                        self.bump();
                        let label = self.ident()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Exit { label, loc })
                    }
                    "run" => {
                        self.bump();
                        let module = self.ident()?;
                        self.expect(Tok::LParen)?;
                        let mut binds = Vec::new();
                        while self.peek().tok != Tok::RParen {
                            if self.peek().tok == Tok::Ellipsis {
                                self.bump(); // implicit-by-name marker
                            } else {
                                let first = self.ident()?;
                                if self.eat_kw("as") {
                                    let outer = self.ident()?;
                                    binds.push(RunBind::Signal {
                                        inner: first,
                                        outer,
                                    });
                                } else if self.peek().tok == Tok::Assign {
                                    self.bump();
                                    let value = self.expr()?;
                                    binds.push(RunBind::Var { name: first, value });
                                } else {
                                    // Bare name: bind same-named signal
                                    // explicitly (no-op but accepted).
                                    binds.push(RunBind::Signal {
                                        inner: first.clone(),
                                        outer: first,
                                    });
                                }
                            }
                            if self.peek().tok == Tok::Comma {
                                self.bump();
                            }
                        }
                        self.expect(Tok::RParen)?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Run { module, binds, loc })
                    }
                    "async" => self.async_stmt(loc),
                    _ => {
                        // Trap label: `IDENT ':' stmt`.
                        if *self.peek2() == Tok::Colon {
                            let label = self.ident()?;
                            self.expect(Tok::Colon)?;
                            let body = self.stmt()?;
                            Ok(Stmt::Trap {
                                label,
                                body: Box::new(body),
                                loc,
                            })
                        } else {
                            Err(self.err(format!("unknown statement `{kw}`")))
                        }
                    }
                }
            }
            other => Err(self.err(format!("expected a statement, found {other}"))),
        }
    }

    fn hop_stmt(&mut self, _loc: Loc) -> Result<Stmt, ParseError> {
        self.expect_kw("hop")?;
        self.expect(Tok::LBrace)?;
        let mut atoms = Vec::new();
        while self.peek().tok != Tok::RBrace {
            let aloc = self.loc();
            if self.eat_kw("log") {
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                atoms.push(Stmt::Atom {
                    body: AtomBody::Log(e),
                    loc: aloc,
                });
            } else if self.eat_kw("host") {
                let name = match &self.peek().tok {
                    Tok::Str(s) => s.clone(),
                    other => return Err(self.err(format!("expected host name string, found {other}"))),
                };
                self.bump();
                self.expect(Tok::Semi)?;
                let f = self
                    .hosts
                    .get_atom(&name)
                    .ok_or_else(|| {
                        ParseError::new(
                            format!("unregistered host atom `{name}`"),
                            aloc.line,
                            aloc.col,
                        )
                    })?
                    .clone();
                atoms.push(Stmt::Atom {
                    body: AtomBody::Host {
                        name,
                        reads: Vec::new(),
                        f,
                    },
                    loc: aloc,
                });
            } else {
                let var = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                atoms.push(Stmt::Atom {
                    body: AtomBody::Assign(var, e),
                    loc: aloc,
                });
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Stmt::seq(atoms))
    }

    fn async_stmt(&mut self, loc: Loc) -> Result<Stmt, ParseError> {
        self.expect_kw("async")?;
        let done_signal = match &self.peek().tok {
            Tok::Ident(s) if s != "kill" => {
                let s = s.clone();
                self.bump();
                Some(s)
            }
            _ => None,
        };
        let mut spec = AsyncSpec {
            done_signal,
            ..AsyncSpec::default()
        };
        spec.on_spawn = Some(self.host_block()?);
        loop {
            if self.is_kw("kill") {
                self.bump();
                spec.on_kill = Some(self.host_block()?);
            } else if self.is_kw("suspend") && *self.peek2() == Tok::LBrace {
                self.bump();
                spec.on_suspend = Some(self.host_block()?);
            } else if self.is_kw("resume") && *self.peek2() == Tok::LBrace {
                self.bump();
                spec.on_resume = Some(self.host_block()?);
            } else {
                break;
            }
        }
        Ok(Stmt::Async { spec, loc })
    }

    fn host_block(&mut self) -> Result<hiphop_core::ast::AsyncHook, ParseError> {
        let loc = self.loc();
        self.expect(Tok::LBrace)?;
        self.expect_kw("host")?;
        let name = match &self.peek().tok {
            Tok::Str(s) => s.clone(),
            other => return Err(self.err(format!("expected host name string, found {other}"))),
        };
        self.bump();
        if self.peek().tok == Tok::Semi {
            self.bump();
        }
        self.expect(Tok::RBrace)?;
        self.hosts
            .get_async(&name)
            .cloned()
            .ok_or_else(|| ParseError::new(format!("unregistered host hook `{name}`"), loc.line, loc.col))
    }

    fn delay(&mut self) -> Result<Delay, ParseError> {
        // Forms: `(cond)`, `immediate (cond)`, `(immediate cond)`,
        // `count(n, cond)`.
        let mut immediate = self.eat_kw("immediate");
        if self.is_kw("count") {
            self.bump();
            self.expect(Tok::LParen)?;
            let n = self.expr()?;
            self.expect(Tok::Comma)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(Delay {
                immediate,
                count: Some(n),
                cond,
            });
        }
        self.expect(Tok::LParen)?;
        if self.eat_kw("immediate") {
            immediate = true;
        }
        if self.is_kw("count") {
            self.bump();
            self.expect(Tok::LParen)?;
            let n = self.expr()?;
            self.expect(Tok::Comma)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::RParen)?;
            return Ok(Delay {
                immediate,
                count: Some(n),
                cond,
            });
        }
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        Ok(Delay {
            immediate,
            count: None,
            cond,
        })
    }

    // ------------------------------------------------------------------
    // Expressions.

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let c = self.or_expr()?;
        if self.peek().tok == Tok::Question {
            self.bump();
            let a = self.expr()?;
            self.expect(Tok::Colon)?;
            let b = self.expr()?;
            Ok(Expr::ternary(c, a, b))
        } else {
            Ok(c)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.peek().tok == Tok::OrOr {
            self.bump();
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.peek().tok == Tok::AndAnd {
            self.bump();
            e = e.and(self.equality()?);
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek().tok {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                Tok::EqEqEq => BinOp::StrictEq,
                Tok::NotEqEq => BinOp::StrictNe,
                _ => break,
            };
            self.bump();
            e = Expr::Binary(op, Box::new(e), Box::new(self.relational()?));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek().tok {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            e = Expr::Binary(op, Box::new(e), Box::new(self.additive()?));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            e = Expr::Binary(op, Box::new(e), Box::new(self.multiplicative()?));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            e = Expr::Binary(op, Box::new(e), Box::new(self.unary()?));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().tok {
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().tok {
                Tok::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = match (&e, field.as_str()) {
                        (Expr::Var(name), "now") => Expr::now(name.clone()),
                        (Expr::Var(name), "pre") => Expr::pre(name.clone()),
                        (Expr::Var(name), "nowval") => Expr::nowval(name.clone()),
                        (Expr::Var(name), "preval") => Expr::preval(name.clone()),
                        _ => e.field(field),
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = e.index(idx);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match &self.peek().tok {
            Tok::Num(n) => {
                let e = Expr::num(*n);
                self.bump();
                Ok(e)
            }
            Tok::Str(s) => {
                let e = Expr::str(s.clone());
                self.bump();
                Ok(e)
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Expr::bool(true))
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Expr::bool(false))
            }
            Tok::Ident(s) if s == "null" => {
                self.bump();
                Ok(Expr::Lit(Value::Null))
            }
            Tok::Ident(s) => {
                let name = s.clone();
                self.bump();
                if self.peek().tok == Tok::LParen {
                    // Built-in pure function call: `min(a, b)`.
                    self.bump();
                    let mut args = Vec::new();
                    while self.peek().tok != Tok::RParen {
                        args.push(self.expr()?);
                        if self.peek().tok == Tok::Comma {
                            self.bump();
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::var(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while self.peek().tok != Tok::RBracket {
                    items.push(self.expr()?);
                    if self.peek().tok == Tok::Comma {
                        self.bump();
                    }
                }
                self.bump();
                Ok(Expr::Array(items))
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}
