//! The lexer for the HipHop concrete syntax.
//!
//! Comments (`// ...` and `/* ... */`), JavaScript-style string escapes,
//! and decimal numbers are supported; everything else is the small token
//! set of [`crate::token::Tok`].

use crate::error::ParseError;
use crate::token::{Spanned, Tok};

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings/comments or stray
/// characters, with line/column information.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $line:expr, $col:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $line,
                col: $col,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize| {
            for _ in 0..n {
                if chars[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col, 1),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                advance(&mut i, &mut line, &mut col, 2);
                let mut closed = false;
                while i + 1 < chars.len() {
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        advance(&mut i, &mut line, &mut col, 2);
                        closed = true;
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, 1);
                }
                if !closed {
                    return Err(ParseError::new("unterminated block comment", tline, tcol));
                }
            }
            '"' | '\'' => {
                let quote = c;
                advance(&mut i, &mut line, &mut col, 1);
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    let ch = chars[i];
                    if ch == quote {
                        advance(&mut i, &mut line, &mut col, 1);
                        closed = true;
                        break;
                    }
                    if ch == '\\' && i + 1 < chars.len() {
                        let esc = chars[i + 1];
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        });
                        advance(&mut i, &mut line, &mut col, 2);
                    } else {
                        if ch == '\n' {
                            return Err(ParseError::new("unterminated string", tline, tcol));
                        }
                        s.push(ch);
                        advance(&mut i, &mut line, &mut col, 1);
                    }
                }
                if !closed {
                    return Err(ParseError::new("unterminated string", tline, tcol));
                }
                push!(Tok::Str(s), tline, tcol);
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // Don't eat `..` (ellipsis) or method-ish dots.
                    if chars[i] == '.' && !chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, 1);
                }
                let text: String = chars[start..i].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| ParseError::new(format!("bad number `{text}`"), tline, tcol))?;
                push!(Tok::Num(n), tline, tcol);
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    advance(&mut i, &mut line, &mut col, 1);
                }
                push!(Tok::Ident(chars[start..i].iter().collect()), tline, tcol);
            }
            _ => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let three: String = chars[i..chars.len().min(i + 3)].iter().collect();
                let (tok, n) = match (three.as_str(), two.as_str(), c) {
                    ("...", _, _) => (Tok::Ellipsis, 3),
                    ("===", _, _) => (Tok::EqEqEq, 3),
                    ("!==", _, _) => (Tok::NotEqEq, 3),
                    (_, "==", _) => (Tok::EqEq, 2),
                    (_, "!=", _) => (Tok::NotEq, 2),
                    (_, "<=", _) => (Tok::Le, 2),
                    (_, ">=", _) => (Tok::Ge, 2),
                    (_, "&&", _) => (Tok::AndAnd, 2),
                    (_, "||", _) => (Tok::OrOr, 2),
                    (_, _, '(') => (Tok::LParen, 1),
                    (_, _, ')') => (Tok::RParen, 1),
                    (_, _, '{') => (Tok::LBrace, 1),
                    (_, _, '}') => (Tok::RBrace, 1),
                    (_, _, '[') => (Tok::LBracket, 1),
                    (_, _, ']') => (Tok::RBracket, 1),
                    (_, _, ',') => (Tok::Comma, 1),
                    (_, _, ';') => (Tok::Semi, 1),
                    (_, _, ':') => (Tok::Colon, 1),
                    (_, _, '.') => (Tok::Dot, 1),
                    (_, _, '=') => (Tok::Assign, 1),
                    (_, _, '?') => (Tok::Question, 1),
                    (_, _, '!') => (Tok::Not, 1),
                    (_, _, '+') => (Tok::Plus, 1),
                    (_, _, '-') => (Tok::Minus, 1),
                    (_, _, '*') => (Tok::Star, 1),
                    (_, _, '/') => (Tok::Slash, 1),
                    (_, _, '%') => (Tok::Percent, 1),
                    (_, _, '<') => (Tok::Lt, 1),
                    (_, _, '>') => (Tok::Gt, 1),
                    other => {
                        let _ = other;
                        return Err(ParseError::new(
                            format!("unexpected character `{c}`"),
                            tline,
                            tcol,
                        ));
                    }
                };
                advance(&mut i, &mut line, &mut col, n);
                push!(tok, tline, tcol);
            }
        }
    }
    push!(Tok::Eof, line, col);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_punct() {
        assert_eq!(
            toks("emit connState(\"error\");"),
            vec![
                Tok::Ident("emit".into()),
                Tok::Ident("connState".into()),
                Tok::LParen,
                Tok::Str("error".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a === b != c <= d && e"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::AndAnd,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_member_dots() {
        assert_eq!(
            toks("x.length >= 2.5"),
            vec![
                Tok::Ident("x".into()),
                Tok::Dot,
                Tok::Ident("length".into()),
                Tok::Ge,
                Tok::Num(2.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn ellipsis_in_run_args() {
        assert_eq!(
            toks("run Identity(...);"),
            vec![
                Tok::Ident("run".into()),
                Tok::Ident("Identity".into()),
                Tok::LParen,
                Tok::Ellipsis,
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_tracked() {
        let ts = lex("// header\n/* multi\nline */ emit X;").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("emit".into()));
        assert_eq!(ts[0].line, 3);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#" "a\nb" "#), vec![Tok::Str("a\nb".into()), Tok::Eof]);
        assert_eq!(toks("'ok'"), vec![Tok::Str("ok".into()), Tok::Eof]);
    }

    #[test]
    fn errors_carry_position() {
        let e = lex("emit @;").unwrap_err();
        assert!(e.to_string().contains("unexpected character"));
        assert!(e.to_string().contains("1:6"), "{e}");
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
    }
}
