//! The host registry: named Rust hooks referenced from textual programs.
//!
//! Rust has no `eval`, so where a HipHop.js program embeds JavaScript —
//! `async` bodies and arbitrary `hop` statements — the textual syntax
//! references *named* hooks registered by the embedder:
//!
//! ```text
//! async connected { host "authenticate" } kill { host "cancel" }
//! hop { host "beep"; }
//! ```
//!
//! Simple atoms (`x = expr;`, `log(expr);`) and all data expressions need
//! no registry: they are interpreted by the expression evaluator.

use hiphop_core::ast::{AsyncHook, AtomCtx};
use std::collections::HashMap;
use std::rc::Rc;

/// Named host hooks available to a parsed program.
#[derive(Default, Clone)]
pub struct HostRegistry {
    asyncs: HashMap<String, AsyncHook>,
    atoms: HashMap<String, Rc<dyn Fn(&mut dyn AtomCtx)>>,
}

impl HostRegistry {
    /// An empty registry.
    pub fn new() -> HostRegistry {
        HostRegistry::default()
    }

    /// Registers an async hook under `name`.
    pub fn async_hook(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut hiphop_core::ast::AsyncCtx<'_>) + 'static,
    ) -> &mut Self {
        let name = name.into();
        self.asyncs.insert(name.clone(), AsyncHook::new(name, f));
        self
    }

    /// Registers an atom hook under `name`.
    pub fn atom(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut dyn AtomCtx) + 'static,
    ) -> &mut Self {
        self.atoms.insert(name.into(), Rc::new(f));
        self
    }

    /// Looks up an async hook.
    pub fn get_async(&self, name: &str) -> Option<&AsyncHook> {
        self.asyncs.get(name)
    }

    /// Looks up an atom hook.
    pub fn get_atom(&self, name: &str) -> Option<&Rc<dyn Fn(&mut dyn AtomCtx)>> {
        self.atoms.get(name)
    }
}

impl std::fmt::Debug for HostRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRegistry")
            .field("asyncs", &self.asyncs.keys().collect::<Vec<_>>())
            .field("atoms", &self.atoms.keys().collect::<Vec<_>>())
            .finish()
    }
}
