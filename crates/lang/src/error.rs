//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl ParseError {
    /// Builds an error at a position.
    pub fn new(message: impl Into<String>, line: u32, col: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}
