//! Phase 1 of the HipHop compiler (paper §5): the textual front-end.
//!
//! Parses the concrete HipHop syntax used throughout the paper into core
//! AST [`hiphop_core::module::Module`]s. Where HipHop.js embeds arbitrary
//! JavaScript (async bodies, host atoms), the textual syntax references
//! *named* hooks from a [`host::HostRegistry`]; pure data expressions are
//! parsed into the interpreted expression language.
//!
//! # Examples
//!
//! ```
//! use hiphop_lang::{parse_program, HostRegistry};
//! use hiphop_runtime::Machine;
//! use hiphop_compiler::compile_module;
//!
//! let src = r#"
//!     module Blink(in tick, out led) {
//!         every (tick.now) { emit led(); }
//!     }
//! "#;
//! let (main, registry) = parse_program(src, "Blink", &HostRegistry::new())?;
//! let compiled = compile_module(&main, &registry)?;
//! let mut m = Machine::new(compiled.circuit)?;
//! m.react()?;
//! let r = m.react_with(&[("tick", hiphop_core::value::Value::Bool(true))])?;
//! assert!(r.present("led"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::type_complexity)] // Rc<dyn Fn> hook signatures are the API

pub mod error;
pub mod host;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::ParseError;
pub use host::HostRegistry;
pub use parser::{parse_file, parse_program};
