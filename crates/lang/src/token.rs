//! Tokens of the HipHop concrete syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `.`.
    Dot,
    /// `...`.
    Ellipsis,
    /// `=`.
    Assign,
    /// `?`.
    Question,
    /// `!`.
    Not,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `===`.
    EqEqEq,
    /// `!=`.
    NotEq,
    /// `!==`.
    NotEqEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Ellipsis => write!(f, "`...`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Question => write!(f, "`?`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::EqEqEq => write!(f, "`===`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::NotEqEq => write!(f, "`!==`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}
