//! `hiphopc` — the command-line HipHop compiler and runner.

use hiphop_cli::{
    build_machine_with, cmd_check, cmd_dot, cmd_pretty, cmd_stats, parse_args, run_line,
};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if opts.command == "serve" {
        // No source file: the score is generated.
        match hiphop_cli::cmd_serve(&opts.serve, &opts.chaos, opts.telemetry.metrics) {
            Ok(report) => {
                if let Some(table) = &report.metrics {
                    eprint!("{table}");
                }
                println!("{}", report.json);
                return;
            }
            Err(e) => {
                eprintln!("hiphopc: {e}");
                std::process::exit(1);
            }
        }
    }
    if opts.command == "replay" {
        // The file is a flight recording, not a source program.
        match hiphop_cli::cmd_replay(&opts.file, opts.serve.shards, &opts.replay) {
            Ok(report) => {
                println!("{}", report.json);
                if !report.ok {
                    std::process::exit(1);
                }
                return;
            }
            Err(e) => {
                eprintln!("hiphopc: {e}");
                std::process::exit(1);
            }
        }
    }
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hiphopc: cannot read {}: {e}", opts.file);
            std::process::exit(1);
        }
    };
    let main = opts.main.as_deref();
    let optimize = !opts.no_optimize;
    let result = match opts.command.as_str() {
        "check" => cmd_check(&source, main).map(Some),
        "analyze" => {
            hiphop_cli::cmd_analyze_with(
                &source,
                main,
                optimize,
                &opts.format,
                &opts.deny,
                opts.facts,
                opts.baseline.as_deref(),
            )
            .map(|r| {
                print!("{}", r.stdout);
                if r.denied {
                    std::process::exit(1);
                }
                None
            })
        }
        "stats" => cmd_stats(&source, main, optimize).map(Some),
        "pretty" => cmd_pretty(&source, main).map(Some),
        "dot" => cmd_dot(&source, main, optimize).map(Some),
        "oracle" => hiphop_cli::cmd_oracle_with(
            &source,
            main,
            optimize,
            opts.stimulus.as_deref().unwrap_or(""),
            opts.engine,
            &opts.telemetry,
        )
        .map(|r| {
            if let Some(table) = &r.metrics {
                eprint!("{table}");
            }
            Some(r.stdout)
        }),
        "trace" => hiphop_cli::cmd_trace_with(
            &source,
            main,
            optimize,
            opts.stimulus.as_deref().unwrap_or(""),
            opts.engine,
            &opts.telemetry,
            &opts.chaos,
        )
        .map(|r| {
            if let Some(table) = &r.metrics {
                eprint!("{table}");
            }
            Some(r.stdout)
        }),
        "run" => build_machine_with(&source, main, optimize, opts.engine).map(|mut machine| {
            opts.chaos.arm(&mut machine);
            eprintln!("one line per instant (the first line is the boot instant): `sig` or `sig=value` tokens; ctrl-d ends");
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                match run_line(&mut machine, &line) {
                    Ok(out) => println!("{out}"),
                    Err(e) => eprintln!("error: {e}"),
                }
                let _ = std::io::stdout().flush();
            }
            None
        }),
        other => {
            eprintln!("unknown command `{other}`\n{}", hiphop_cli::USAGE);
            std::process::exit(2);
        }
    };
    match result {
        Ok(Some(text)) => print!("{text}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("hiphopc: {e}");
            std::process::exit(1);
        }
    }
}
