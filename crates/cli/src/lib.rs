//! The `hiphopc` driver library: everything the command-line compiler
//! does, exposed as functions so it can be tested without spawning
//! processes.
//!
//! Subcommands:
//!
//! - `check`  — parse + link + static checks;
//! - `analyze`— compile and run the circuit lint framework (constructiveness
//!   verdicts, emission hygiene, dead nets) with `--deny` gating;
//! - `stats`  — circuit statistics after compilation;
//! - `pretty` — pretty-print the linked program;
//! - `dot`    — Graphviz rendering of the compiled circuit;
//! - `run`    — interactive reaction loop: each input line is one instant,
//!   `sig` or `sig=value` tokens set inputs, outputs are printed.

#![warn(missing_docs)]

use hiphop_compiler::{compile_module_with, lint_compiled, CompileOptions};
use hiphop_core::module::link;
use hiphop_core::value::Value;
use hiphop_lang::{parse_file, HostRegistry};
use hiphop_runtime::telemetry::shared;
use hiphop_runtime::{EngineMode, JsonlSink, Machine, VcdSink};
use std::fmt::Write as _;

/// A CLI failure, rendered to stderr by `main`.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand.
    pub command: String,
    /// Source file path.
    pub file: String,
    /// Main module name (defaults to the last module in the file).
    pub main: Option<String>,
    /// Disable the optimizer.
    pub no_optimize: bool,
    /// Stimulus for `trace` (instants separated by `;`).
    pub stimulus: Option<String>,
    /// Evaluation engine override for `run`/`trace`/`oracle` — and,
    /// mirrored into [`ServeOptions::engine`] / [`ReplayFlags::engine`],
    /// for `serve`/`replay` too (`None` = automatic: levelized when the
    /// circuit is acyclic).
    pub engine: Option<EngineMode>,
    /// Telemetry outputs for `trace` / `oracle`.
    pub telemetry: TelemetryOptions,
    /// Seeded fault injection for `trace` / `run` (the `oracle`
    /// differential check always runs fault-free).
    pub chaos: ChaosOptions,
    /// Output format for `analyze` (`pretty` or `json`).
    pub format: String,
    /// Lints (by code or name) that make `analyze` exit non-zero.
    pub deny: Vec<String>,
    /// `analyze`: append a one-line JSON dataflow-fact summary
    /// (`--facts`).
    pub facts: bool,
    /// `analyze`: suppress lints recorded in this baseline file
    /// (`--baseline FILE`; JSON lines as produced by `--format json`).
    pub baseline: Option<String>,
    /// Session-pool knobs for `serve`.
    pub serve: ServeOptions,
    /// Window/verification knobs for `replay`.
    pub replay: ReplayFlags,
}

/// Knobs for the `serve` subcommand: a sharded multi-session concert
/// run on the virtual clock (no source file — the score is generated).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Audience sessions to open (`--sessions`).
    pub sessions: u64,
    /// Pool shards (`--shards`).
    pub shards: usize,
    /// Beats to run (`--ticks`).
    pub ticks: u64,
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Generated score family (`--shape small|concert|classical`).
    pub shape: String,
    /// Write a flight-recorder journal (JSONL) to this file (`--record`).
    pub record: Option<String>,
    /// Write a Chrome trace-event JSON file to this path (`--trace-spans`).
    pub trace_spans: Option<String>,
    /// Write a Prometheus text exposition to this path (`--prom`).
    pub prom: Option<String>,
    /// Print a pool-metrics line to stderr every N beats (`--watch N`,
    /// 0 = off).
    pub watch: u64,
    /// Bit-parallel cohort execution (`--cohort u64|wide`, default
    /// scalar). A pure execution strategy: digests are identical.
    pub cohort: Option<hiphop_runtime::CohortWidth>,
    /// Write the last pool checkpoint (JSONL) to this file
    /// (`--snapshot FILE`).
    pub snapshot: Option<String>,
    /// Checkpoint the pool every N beats (`--snapshot-every N`, 0 =
    /// only a final checkpoint when `--snapshot` is given).
    pub snapshot_every: u64,
    /// Run the metrics-driven rebalancer after each checkpoint
    /// (`--rebalance`).
    pub rebalance: bool,
    /// Force every session onto this evaluation engine (`--engine E`,
    /// default per-machine automatic). Digest-neutral by construction.
    pub engine: Option<EngineMode>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            sessions: 16,
            shards: 4,
            ticks: 32,
            seed: 0,
            shape: "small".to_owned(),
            record: None,
            trace_spans: None,
            prom: None,
            watch: 0,
            cohort: None,
            snapshot: None,
            snapshot_every: 0,
            rebalance: false,
            engine: None,
        }
    }
}

/// Knobs for the `replay` subcommand (`--from` / `--to` /
/// `--verify-digests`). Digest verification defaults to *on* — a replay
/// that checks nothing answers nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayFlags {
    /// Compare digest checkpoints (`--verify-digests` forces on,
    /// `--no-verify-digests` disables).
    pub verify_digests: bool,
    /// First tick whose checkpoints are checked (`--from`).
    pub from: u64,
    /// Last tick to re-execute (`--to`).
    pub to: u64,
    /// Replay on a bit-parallel cohort pool (`--cohort u64|wide`) —
    /// recordings are mode-agnostic, so a scalar recording verifies on
    /// a cohort pool and vice versa.
    pub cohort: Option<hiphop_runtime::CohortWidth>,
    /// Restore this pool checkpoint (from `serve --snapshot`) first and
    /// re-drive only the journal suffix (`--snapshot FILE`). Required
    /// for `--from N` with N > 0.
    pub snapshot: Option<String>,
    /// Re-drive the journal on an all-`engine` pool (`--engine E`) —
    /// recordings are engine-agnostic, so the digests must still match.
    pub engine: Option<EngineMode>,
}

impl Default for ReplayFlags {
    fn default() -> ReplayFlags {
        ReplayFlags {
            verify_digests: true,
            from: 0,
            to: u64::MAX,
            cohort: None,
            snapshot: None,
            engine: None,
        }
    }
}

/// Seeded fault injection knobs (`--chaos-seed` / `--chaos-rate`).
/// Injected faults surface as structured `HostPanic` errors and the
/// failed reaction is rolled back, so a chaotic trace reports the error
/// and keeps going.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosOptions {
    /// PCG32 seed for the fault stream (default 0).
    pub seed: u64,
    /// Per-action fault probability in `[0, 1]`; 0 disables injection.
    pub rate: f64,
}

impl ChaosOptions {
    /// Arms fault injection on `machine` when the rate is non-zero.
    pub fn arm(&self, machine: &mut Machine) {
        if self.rate > 0.0 {
            machine.set_chaos(self.seed, self.rate);
        }
    }
}

/// Telemetry outputs attached to the machine by `trace` and `oracle`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Print a percentile metrics table (stderr).
    pub metrics: bool,
    /// Write a structured JSONL trace to this file.
    pub jsonl: Option<String>,
    /// Write a GTKWave-compatible VCD waveform to this file.
    pub vcd: Option<String>,
}

impl TelemetryOptions {
    /// Attaches the requested sinks to `machine`.
    ///
    /// # Errors
    ///
    /// Fails when an output file cannot be created.
    pub fn attach(&self, machine: &mut Machine) -> Result<(), CliError> {
        if let Some(path) = &self.jsonl {
            let sink = JsonlSink::to_file(path)
                .map_err(|e| fail(format!("cannot create {path}: {e}")))?;
            machine.attach_sink(shared(sink));
        }
        if let Some(path) = &self.vcd {
            let sink = VcdSink::for_machine(machine, path)
                .map_err(|e| fail(format!("cannot create {path}: {e}")))?;
            machine.attach_sink(shared(sink));
        }
        if self.metrics {
            machine.enable_metrics();
        }
        Ok(())
    }
}

/// Parses `argv` (without the program name).
///
/// # Errors
///
/// Fails on unknown flags or missing arguments.
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| fail(USAGE))?
        .clone();
    if command == "--help" || command == "-h" || command == "help" {
        return Err(fail(USAGE));
    }
    let mut file = None;
    let mut main = None;
    let mut no_optimize = false;
    let mut stimulus = None;
    let mut engine = None;
    let mut telemetry = TelemetryOptions::default();
    let mut chaos = ChaosOptions::default();
    let mut format = "pretty".to_owned();
    let mut deny = Vec::new();
    let mut facts = false;
    let mut baseline = None;
    let mut serve = ServeOptions::default();
    let mut replay = ReplayFlags::default();
    let uint = |flag: &str, v: Option<&String>| -> Result<u64, CliError> {
        v.ok_or_else(|| fail(format!("{flag} needs an integer")))?
            .parse()
            .map_err(|e| fail(format!("{flag}: {e}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                // Shared by `run`/`trace`/`oracle` (one machine),
                // `serve` (every pooled session) and `replay` (the
                // re-driven pool).
                let name = it.next().ok_or_else(|| {
                    fail(
                        "--engine needs a mode (auto, levelized, constructive, naive, hybrid, sparse)",
                    )
                })?;
                engine = match name.as_str() {
                    "auto" => None,
                    other => Some(other.parse::<EngineMode>().map_err(fail)?),
                };
            }
            "--main" => {
                main = Some(
                    it.next()
                        .ok_or_else(|| fail("--main needs a module name"))?
                        .clone(),
                )
            }
            "--stimulus" => {
                stimulus = Some(
                    it.next()
                        .ok_or_else(|| fail("--stimulus needs a string"))?
                        .clone(),
                )
            }
            "--no-optimize" => no_optimize = true,
            "--format" => {
                let f = it
                    .next()
                    .ok_or_else(|| fail("--format needs `pretty` or `json`"))?;
                if f != "pretty" && f != "json" {
                    return Err(fail(format!(
                        "--format must be `pretty` or `json`, not `{f}`"
                    )));
                }
                format = f.clone();
            }
            "--deny" => {
                deny.push(
                    it.next()
                        .ok_or_else(|| fail("--deny needs a lint code or name"))?
                        .clone(),
                );
            }
            "--facts" => facts = true,
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .ok_or_else(|| fail("--baseline needs a file path"))?
                        .clone(),
                )
            }
            "--metrics" => telemetry.metrics = true,
            "--jsonl" => {
                telemetry.jsonl = Some(
                    it.next()
                        .ok_or_else(|| fail("--jsonl needs a file path"))?
                        .clone(),
                )
            }
            "--vcd" => {
                telemetry.vcd = Some(
                    it.next()
                        .ok_or_else(|| fail("--vcd needs a file path"))?
                        .clone(),
                )
            }
            "--sessions" => serve.sessions = uint("--sessions", it.next())?,
            "--shards" => {
                serve.shards = uint("--shards", it.next())? as usize;
                if serve.shards == 0 {
                    return Err(fail("--shards must be at least 1"));
                }
            }
            "--ticks" => serve.ticks = uint("--ticks", it.next())?,
            "--seed" => serve.seed = uint("--seed", it.next())?,
            "--record" => {
                serve.record = Some(
                    it.next()
                        .ok_or_else(|| fail("--record needs a file path"))?
                        .clone(),
                )
            }
            "--trace-spans" => {
                serve.trace_spans = Some(
                    it.next()
                        .ok_or_else(|| fail("--trace-spans needs a file path"))?
                        .clone(),
                )
            }
            "--prom" => {
                serve.prom = Some(
                    it.next()
                        .ok_or_else(|| fail("--prom needs a file path"))?
                        .clone(),
                )
            }
            "--watch" => serve.watch = uint("--watch", it.next())?,
            "--cohort" => {
                // Shared by `serve` (execution mode) and `replay`
                // (pool the recording is re-executed on).
                let width = it
                    .next()
                    .ok_or_else(|| fail("--cohort needs a width (u64 or wide)"))?
                    .parse::<hiphop_runtime::CohortWidth>()
                    .map_err(fail)?;
                serve.cohort = Some(width);
                replay.cohort = Some(width);
            }
            "--snapshot" => {
                // Shared by `serve` (checkpoint output file) and
                // `replay` (checkpoint to restore before re-driving).
                let path = it
                    .next()
                    .ok_or_else(|| fail("--snapshot needs a file path"))?
                    .clone();
                serve.snapshot = Some(path.clone());
                replay.snapshot = Some(path);
            }
            "--snapshot-every" => {
                serve.snapshot_every = uint("--snapshot-every", it.next())?;
            }
            "--rebalance" => serve.rebalance = true,
            "--verify-digests" => replay.verify_digests = true,
            "--no-verify-digests" => replay.verify_digests = false,
            "--from" => replay.from = uint("--from", it.next())?,
            "--to" => replay.to = uint("--to", it.next())?,
            "--shape" => {
                let s = it
                    .next()
                    .ok_or_else(|| fail("--shape needs `small`, `concert` or `classical`"))?;
                if !["small", "concert", "classical"].contains(&s.as_str()) {
                    return Err(fail(format!(
                        "--shape must be `small`, `concert` or `classical`, not `{s}`"
                    )));
                }
                serve.shape = s.clone();
            }
            "--chaos-seed" => {
                chaos.seed = it
                    .next()
                    .ok_or_else(|| fail("--chaos-seed needs an integer"))?
                    .parse()
                    .map_err(|e| fail(format!("--chaos-seed: {e}")))?;
            }
            "--chaos-rate" => {
                let rate: f64 = it
                    .next()
                    .ok_or_else(|| fail("--chaos-rate needs a probability in [0, 1]"))?
                    .parse()
                    .map_err(|e| fail(format!("--chaos-rate: {e}")))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(fail("--chaos-rate must be within [0, 1]"));
                }
                chaos.rate = rate;
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(fail(format!("unknown argument `{other}`\n{USAGE}"))),
        }
    }
    let file = if command == "serve" {
        // `serve` runs a generated score: no source file.
        file.unwrap_or_default()
    } else if command == "replay" {
        file.ok_or_else(|| fail(format!("replay needs a recording file\n{USAGE}")))?
    } else {
        file.ok_or_else(|| fail(format!("missing source file\n{USAGE}")))?
    };
    serve.engine = engine;
    replay.engine = engine;
    Ok(Options {
        command,
        file,
        main,
        no_optimize,
        stimulus,
        engine,
        telemetry,
        chaos,
        format,
        deny,
        facts,
        baseline,
        serve,
        replay,
    })
}

/// Output of [`cmd_serve`]: a one-line JSON summary for stdout plus the
/// optional rendered pool-metrics table (stderr).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One JSON object summarising the run (stdout).
    pub json: String,
    /// Rendered `--metrics` pool table, when requested.
    pub metrics: Option<String>,
}

/// `serve`: opens `--sessions` audience sessions over `--shards` shards
/// of a [`hiphop_eventloop::sessions::SessionPool`] and drives `--ticks`
/// beats of the generated Skini concert deterministically on the virtual
/// clock. Prints a one-line JSON summary; `--metrics` adds the per-shard
/// roll-up table. The observability plane rides along on request:
/// `--record FILE` writes the flight journal (replayable with the
/// `replay` subcommand), `--trace-spans FILE` writes a Chrome
/// trace-event JSON loadable in Perfetto, `--prom FILE` writes a
/// Prometheus text exposition, and `--watch N` prints a metrics line to
/// stderr every N beats.
///
/// # Errors
///
/// Fails on an unknown `--shape`, a score compile error, a dead
/// shard, or an unwritable output file. Injected chaos faults (from
/// `--chaos-rate`) roll back and are counted, not fatal.
pub fn cmd_serve(
    serve: &ServeOptions,
    chaos: &ChaosOptions,
    metrics: bool,
) -> Result<ServeReport, CliError> {
    let shape = match serve.shape.as_str() {
        "small" => hiphop_skini::ScoreShape::small(),
        "concert" => hiphop_skini::ScoreShape::concert(),
        "classical" => hiphop_skini::ScoreShape::classical(),
        other => return Err(fail(format!("unknown --shape `{other}`"))),
    };
    let cfg = hiphop_skini::ConcertConfig {
        sessions: serve.sessions,
        shards: serve.shards,
        ticks: serve.ticks,
        seed: serve.seed,
        shape,
        chaos_rate: chaos.rate,
    };
    let opts = hiphop_skini::ConcertRunOptions {
        record: serve
            .record
            .as_ref()
            .map(|_| hiphop_runtime::RecorderConfig::default()),
        trace_spans: serve.trace_spans.is_some(),
        // Per-level counters feed the Prometheus exposition.
        level_activity: serve.prom.is_some(),
        cohort: serve.cohort,
        engine: serve.engine,
        // A final checkpoint is always taken when `--snapshot` names a
        // file, even without an explicit `--snapshot-every` cadence.
        snapshot_every: match (serve.snapshot_every, &serve.snapshot) {
            (0, Some(_)) => serve.ticks.max(1),
            (every, _) => every,
        },
        rebalance: serve
            .rebalance
            .then(hiphop_eventloop::sessions::RebalancerConfig::default),
        watch_every: serve.watch,
        watch: (serve.watch > 0).then(|| {
            Box::new(|beat: u64, m: &hiphop_runtime::PoolMetrics| {
                eprintln!(
                    "[watch] beat {beat}: {} reaction(s), {} rollback(s) across {} session(s)",
                    m.reactions,
                    m.rollbacks,
                    m.sessions(),
                );
            }) as Box<dyn FnMut(u64, &hiphop_runtime::PoolMetrics)>
        }),
    };
    let run = hiphop_skini::concert::run_with(&cfg, opts).map_err(fail)?;
    if let Some(path) = &serve.snapshot {
        let (_, snap) = run
            .snapshots
            .last()
            .ok_or_else(|| fail("a snapshot was requested but none was taken"))?;
        std::fs::write(path, snap.to_jsonl())
            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &serve.record {
        let rec = run
            .recording
            .as_ref()
            .ok_or_else(|| fail("recording was requested but not captured"))?;
        std::fs::write(path, rec.to_jsonl())
            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &serve.trace_spans {
        std::fs::write(path, hiphop_runtime::chrome_trace(&run.spans))
            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &serve.prom {
        std::fs::write(path, run.report.metrics.render_prometheus())
            .map_err(|e| fail(format!("cannot write {path}: {e}")))?;
    }
    let report = run.report;
    let json = format!(
        "{{\"sessions\":{},\"shards\":{},\"ticks\":{},\"shape\":\"{}\",\"seed\":{},\"enqueued\":{},\"played\":{},\"faults\":{},\"migrations\":{},\"digest\":\"{:016x}\",\"pool\":{}}}",
        report.sessions,
        serve.shards,
        report.ticks,
        serve.shape,
        serve.seed,
        report.enqueued,
        report.played,
        report.faults,
        report.migrations,
        report.digest,
        report.metrics.to_json(),
    );
    Ok(ServeReport {
        json,
        metrics: metrics.then(|| hiphop_runtime::Metrics::render_pool(&report.metrics)),
    })
}

/// Output of [`cmd_replay`]: the verification report (one JSON object)
/// and whether every checked digest matched — the binary exits non-zero
/// on a mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRunReport {
    /// One JSON object summarising the replay (stdout).
    pub json: String,
    /// True when no digest mismatches were found.
    pub ok: bool,
}

/// `replay`: re-executes a flight recording (written by `serve
/// --record`) on a fresh pool with `--shards` shards — any shard count,
/// since shard assignment never affects session semantics — and checks
/// digest checkpoints in the `--from`/`--to` window unless
/// `--no-verify-digests`.
///
/// # Errors
///
/// Fails on an unreadable or malformed recording, a foreign scenario, a
/// ring-evicted journal, or a dead shard. Digest *mismatches* are
/// reported in [`ReplayRunReport::ok`], not raised as errors.
pub fn cmd_replay(
    file: &str,
    shards: usize,
    flags: &ReplayFlags,
) -> Result<ReplayRunReport, CliError> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| fail(format!("cannot read {file}: {e}")))?;
    let rec = hiphop_runtime::Recording::from_jsonl(&text).map_err(fail)?;
    let from_snapshot = match &flags.snapshot {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read {path}: {e}")))?;
            Some(
                hiphop_runtime::PoolSnapshot::from_jsonl(&text)
                    .map_err(|e| fail(format!("{path}: {e}")))?,
            )
        }
        None => None,
    };
    let opts = hiphop_runtime::ReplayOptions {
        from: flags.from,
        to: flags.to,
        verify_digests: flags.verify_digests,
        from_snapshot,
    };
    let report =
        hiphop_skini::concert::replay_with(&rec, shards, &opts, flags.cohort, flags.engine)
            .map_err(fail)?;
    Ok(ReplayRunReport {
        json: report.to_json(),
        ok: report.ok(),
    })
}

/// Usage text.
pub const USAGE: &str = "usage: hiphopc <check|analyze|stats|pretty|dot|run|trace|oracle> FILE [--main MODULE] [--no-optimize] [--stimulus S] [--engine E]
       hiphopc serve [--sessions N] [--shards N] [--ticks N] [--seed N] [--shape S] [--metrics]
                     [--record FILE] [--trace-spans FILE] [--prom FILE] [--watch N] [--cohort u64|wide]
                     [--snapshot FILE] [--snapshot-every N] [--rebalance] [--engine E]
       hiphopc replay FILE [--shards N] [--from N] [--to N] [--no-verify-digests] [--cohort u64|wide]
                     [--snapshot FILE] [--engine E]
  check   parse, link and statically check the program
  analyze compile and lint the circuit: constructiveness verdicts per
          cyclic SCC, emission hygiene, dead nets
  stats   print circuit statistics after compilation
  pretty  pretty-print the linked program
  dot     print a Graphviz rendering of the circuit, colored by the
          dataflow facts (constant nets filled, unobservable outlined)
  run     interactive: one line per instant, `sig` or `sig=value` tokens;
          a lone `?` prints the control state without reacting
  trace   render the output waveform for --stimulus \"A;B;;A B\"
  oracle  run --stimulus through the machine AND the reference
          interpreter, reporting any disagreement
  serve   run a sharded multi-session Skini concert on the virtual
          clock: --sessions audience sessions over --shards shards for
          --ticks beats (--shape small|concert|classical, --seed N);
          prints a one-line JSON summary, --metrics adds the per-shard
          table, --chaos-rate injects per-session faults (the fault
          streams derive from --seed)
  replay  re-execute a flight recording (from serve --record) on a
          fresh pool and verify digest checkpoints instant by instant
serve observability flags:
  --record FILE       write the flight-recorder journal (JSONL): every
                      injected input, tick boundary and digest
                      checkpoint, replayable with `hiphopc replay`
  --trace-spans FILE  write tick/sweep/reaction spans as Chrome
                      trace-event JSON (open in Perfetto; one process
                      track per shard)
  --prom FILE         write the pool metrics as a Prometheus text
                      exposition (counters, histograms, per-shard and
                      per-level series)
  --watch N           print a pool-metrics line to stderr every N beats
serve durability flags:
  --snapshot FILE     write the final pool checkpoint (JSONL) to FILE:
                      versioned machine snapshots for every session,
                      restorable onto any shard count
  --snapshot-every N  checkpoint the pool every N beats (the last
                      checkpoint taken is the one written to FILE)
  --rebalance         run the metrics-driven rebalancer after each
                      checkpoint, migrating sessions off hot shards
                      (digest-neutral: placement never affects
                      semantics)
replay flags:
  --shards N            shard count for the replay pool (digests must
                        match on ANY shard count; default 4)
  --from N / --to N     only check checkpoints in this tick window
  --snapshot FILE       restore this checkpoint (from serve --snapshot)
                        first and re-drive only the journal suffix;
                        required for --from N with N > 0
  --verify-digests      compare digest checkpoints (the default)
  --no-verify-digests   just re-execute, skip digest comparison
analyze flags:
  --format pretty|json   human-readable lines (default) or one JSON
                         object per lint
  --deny LINT            exit non-zero if LINT fires (by code `HH001`
                         or name `non-constructive`; repeatable)
  --facts                append a one-line JSON summary of the
                         inter-instant dataflow facts (constant nets,
                         observability, per-signal emit capability)
  --baseline FILE        suppress lints recorded in FILE (JSON lines
                         from a previous `--format json` run); new
                         findings still report and still --deny
engine selection (run, trace, oracle, serve and replay):
  --engine auto          levelized when the circuit is acyclic, else
                         hybrid (the default)
  --engine levelized     dense topological sweep (falls back to hybrid
                         on cyclic circuits)
  --engine sparse        incremental dirty-set sweep: only nets reachable
                         from changed inputs and flipped registers are
                         re-evaluated (falls back to hybrid on cyclic
                         circuits); byte-identical to the dense engines
  --engine hybrid        levelized sweeps over acyclic regions, bounded
                         constructive iteration inside undecided SCCs
  --engine constructive  FIFO event propagation with causality reports
  --engine naive         O(nets²) reference fixpoint
  under serve/replay the override applies to every pooled session
telemetry flags (trace and oracle only):
  --metrics      print a per-reaction percentile table (duration, net
                 events, actions, queue high-water mark) to stderr
  --jsonl FILE   write a structured trace, one JSON object per event line
  --vcd FILE     write the output waveform as a Value Change Dump
                 viewable in GTKWave
fault injection (trace and run; oracle always runs fault-free):
  --chaos-rate P   inject host panics into action nets with probability
                   P per action; each failed reaction is rolled back,
                   reported, and the trace continues
  --chaos-seed N   PCG32 seed for the fault stream (default 0) — the
                   same seed and rate replay the same fault schedule";

fn load(
    source: &str,
    main: Option<&str>,
) -> Result<(hiphop_core::module::Module, hiphop_core::module::ModuleRegistry), CliError> {
    let registry =
        parse_file(source, &HostRegistry::new()).map_err(|e| fail(e.to_string()))?;
    let main_module = match main {
        Some(name) => registry
            .get(name)
            .cloned()
            .ok_or_else(|| fail(format!("no module named `{name}`")))?,
        None => {
            let mut all: Vec<_> = registry.iter().collect();
            if all.len() == 1 {
                all.pop().expect("len checked").clone()
            } else {
                return Err(fail(format!(
                    "file defines {} modules; pick one with --main ({})",
                    all.len(),
                    all.iter().map(|m| m.name.as_str()).collect::<Vec<_>>().join(", ")
                )));
            }
        }
    };
    Ok((main_module, registry))
}

/// `check`: parse + link + static checks. Returns the report text.
///
/// # Errors
///
/// Fails on parse/link/check errors.
pub fn cmd_check(source: &str, main: Option<&str>) -> Result<String, CliError> {
    let (module, registry) = load(source, main)?;
    let linked = link(&module, &registry).map_err(|e| fail(e.to_string()))?;
    let warnings = hiphop_core::check::check(&linked).map_err(|e| fail(e.to_string()))?;
    let mut out = format!("{}: ok ({} interface signals)\n", linked.name, linked.interface.len());
    for w in warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    Ok(out)
}

/// Output of [`cmd_analyze`]: the rendered lints plus whether any
/// `--deny` filter fired (the binary exits non-zero in that case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReport {
    /// Rendered lint lines (pretty or JSON, one per line).
    pub stdout: String,
    /// True when a lint matching a `--deny` filter fired.
    pub denied: bool,
    /// Lints dropped by the `--baseline` file.
    pub suppressed: usize,
}

/// `analyze`: compile and run the circuit lint framework. Unlike
/// machine construction, this never rejects a non-constructive program —
/// the verdict surfaces as the `HH001` deny-level lint so the whole
/// report is always produced.
///
/// # Errors
///
/// Fails on front-end or compilation errors, or an unknown `--format`.
pub fn cmd_analyze(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    format: &str,
    deny: &[String],
) -> Result<AnalyzeReport, CliError> {
    cmd_analyze_with(source, main, optimize, format, deny, false, None)
}

/// Reads one string-valued field out of a single-line JSON object,
/// undoing the `\\` / `\"` escapes that [`hiphop_compiler::Lint::to_json`]
/// applies. Good enough for baseline files we wrote ourselves; not a
/// general JSON parser.
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// [`cmd_analyze`] with the dataflow extras: `--facts` appends a
/// one-line JSON summary of the inter-instant facts (constants,
/// observability, per-interface-signal emit capability), and
/// `--baseline FILE` suppresses lints already recorded in a previous
/// `--format json` run — matched by `(code, message)` so known findings
/// stay out of the report while anything new still fires `--deny`.
///
/// # Errors
///
/// Additionally fails on an unreadable baseline file.
pub fn cmd_analyze_with(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    format: &str,
    deny: &[String],
    facts: bool,
    baseline: Option<&str>,
) -> Result<AnalyzeReport, CliError> {
    let (module, registry) = load(source, main)?;
    let compiled = compile_module_with(&module, &registry, CompileOptions { optimize, ..CompileOptions::default() })
        .map_err(|e| fail(e.to_string()))?;
    let known: std::collections::HashSet<(String, String)> = match baseline {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| fail(format!("cannot read baseline {path}: {e}")))?
            .lines()
            .filter_map(|l| {
                Some((json_string_field(l, "code")?, json_string_field(l, "message")?))
            })
            .collect(),
        None => Default::default(),
    };
    let all = lint_compiled(&compiled);
    let (suppressed, lints): (Vec<_>, Vec<_>) = all
        .into_iter()
        .partition(|l| known.contains(&(l.code.to_owned(), l.message.clone())));
    let denied: Vec<&hiphop_compiler::Lint> = lints
        .iter()
        .filter(|l| deny.iter().any(|d| l.matches(d)))
        .collect();
    let mut out = String::new();
    match format {
        "json" => {
            for l in &lints {
                let _ = writeln!(out, "{}", l.to_json());
            }
        }
        "pretty" => {
            for l in &lints {
                let _ = writeln!(out, "{}", l.pretty());
            }
            let _ = writeln!(
                out,
                "{}: {} lint(s) ({} denied, {} baseline-suppressed)",
                module.name,
                lints.len(),
                denied.len(),
                suppressed.len()
            );
        }
        other => return Err(fail(format!("unknown --format `{other}`"))),
    }
    if facts {
        let _ = writeln!(out, "{}", facts_json(&compiled.circuit));
    }
    Ok(AnalyzeReport {
        stdout: out,
        denied: !denied.is_empty(),
        suppressed: suppressed.len(),
    })
}

/// One-line JSON summary of the inter-instant dataflow facts.
fn facts_json(circuit: &hiphop_circuit::Circuit) -> String {
    let facts = hiphop_circuit::dataflow::analyze(circuit);
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let signals: Vec<String> = circuit
        .signals()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.direction != hiphop_core::signal::Direction::Local)
        .map(|(i, s)| {
            let cap = facts.emit_capability(circuit, hiphop_circuit::SignalId(i as u32));
            format!(
                "{{\"name\":\"{}\",\"direction\":\"{}\",\"may_emit\":{},\"must_emit\":{}}}",
                esc(&s.name),
                s.direction,
                cap.may,
                cap.must
            )
        })
        .collect();
    format!(
        "{{\"facts\":{{\"nets\":{},\"constant_nets\":{},\"unobservable_nets\":{},\"pinned_registers\":{},\"dep_only_sccs\":{},\"schizophrenic_locals\":{},\"widened\":{},\"signals\":[{}]}}}}",
        circuit.nets().len(),
        facts.constant_nets(circuit),
        facts.unobservable_nets(),
        facts.pinned_registers(),
        facts.dep_only_sccs.len(),
        facts.schizophrenic.len(),
        facts.widened,
        signals.join(",")
    )
}

/// `stats`: compile and report circuit statistics.
///
/// # Errors
///
/// Fails on any front-end or compilation error.
pub fn cmd_stats(source: &str, main: Option<&str>, optimize: bool) -> Result<String, CliError> {
    let (module, registry) = load(source, main)?;
    let compiled = compile_module_with(&module, &registry, CompileOptions { optimize, ..CompileOptions::default() })
        .map_err(|e| fail(e.to_string()))?;
    let stats = compiled.circuit.stats();
    let mut out = String::new();
    let _ = writeln!(out, "module   : {}", module.name);
    let _ = writeln!(out, "stmts    : {}", module.body.statement_count());
    let _ = writeln!(out, "nets     : {}", stats.nets);
    let _ = writeln!(out, "registers: {}", stats.registers);
    let _ = writeln!(out, "signals  : {}", stats.signals);
    let _ = writeln!(out, "edges    : {} (+{} data deps)", stats.fanin_edges, stats.dep_edges);
    let _ = writeln!(out, "memory   : {} bytes ({:.1} B/net)", stats.bytes, stats.bytes_per_net());
    if let Some(rep) = &compiled.optimizer {
        let _ = writeln!(
            out,
            "optimizer: {} -> {} nets, {} -> {} registers (fact-folded {}, pinned {}, pruned {} pre)",
            rep.nets_before,
            rep.nets_after,
            rep.registers_before,
            rep.registers_after,
            rep.fact_constant_nets,
            rep.pinned_registers,
            rep.pruned_pre_registers
        );
    }
    let facts = hiphop_circuit::dataflow::analyze(&compiled.circuit);
    let _ = writeln!(
        out,
        "facts    : {} constant net(s), {} unobservable, {} dep-only scc(s), {} schizophrenic local(s){}",
        facts.constant_nets(&compiled.circuit),
        facts.unobservable_nets(),
        facts.dep_only_sccs.len(),
        facts.schizophrenic.len(),
        if facts.widened { " [widened]" } else { "" }
    );
    match compiled.levels {
        Some(levels) => {
            let _ = writeln!(out, "engine   : levelized ({levels} topological levels)");
        }
        None => {
            let _ = writeln!(out, "engine   : hybrid (combinational cycle)");
        }
    }
    let analysis = &compiled.analysis;
    if analysis.cyclic_sccs() > 0 {
        let _ = writeln!(
            out,
            "sccs     : {} cyclic (largest {} nets)",
            analysis.cyclic_sccs(),
            analysis.largest_scc()
        );
        let _ = writeln!(
            out,
            "verdicts : {} constructive, {} non-constructive, {} input-dependent",
            analysis.count(hiphop_circuit::Verdict::Constructive),
            analysis.count(hiphop_circuit::Verdict::NonConstructive),
            analysis.count(hiphop_circuit::Verdict::InputDependent)
        );
    }
    if compiled.cycle_warnings > 0 {
        let _ = writeln!(
            out,
            "warning  : {} potential causality cycle(s) (may still be constructive)",
            compiled.cycle_warnings
        );
    }
    for w in &compiled.warnings {
        let _ = writeln!(out, "warning  : {w}");
    }
    Ok(out)
}

/// `pretty`: linked program in concrete syntax.
///
/// # Errors
///
/// Fails on front-end errors.
pub fn cmd_pretty(source: &str, main: Option<&str>) -> Result<String, CliError> {
    let (module, registry) = load(source, main)?;
    let linked = link(&module, &registry).map_err(|e| fail(e.to_string()))?;
    let iface: Vec<String> = linked
        .interface
        .iter()
        .map(|d| format!("{} {}", d.direction, d.name))
        .collect();
    Ok(format!(
        "module {}({}) {{\n{}}}\n",
        linked.name,
        iface.join(", "),
        linked.body
    ))
}

/// `dot`: Graphviz rendering, colored by the dataflow facts —
/// provably-constant nets are gold (true) or gray (false), nets that can
/// never influence anything observable get a gray outline.
///
/// # Errors
///
/// Fails on front-end or compilation errors.
pub fn cmd_dot(source: &str, main: Option<&str>, optimize: bool) -> Result<String, CliError> {
    let (module, registry) = load(source, main)?;
    let compiled = compile_module_with(&module, &registry, CompileOptions { optimize, ..CompileOptions::default() })
        .map_err(|e| fail(e.to_string()))?;
    let facts = hiphop_circuit::dataflow::analyze(&compiled.circuit);
    Ok(compiled.circuit.to_dot_with_facts(&facts))
}

/// `trace`: drives the machine with a stimulus (instants separated by
/// `;`, each a whitespace-separated list of `sig` / `sig=value` tokens;
/// an empty segment is an empty instant) and renders the output-signal
/// waveform.
///
/// # Errors
///
/// Fails on front-end, input or reaction errors.
pub fn cmd_trace(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    stimulus: &str,
) -> Result<String, CliError> {
    Ok(cmd_trace_with(
        source,
        main,
        optimize,
        stimulus,
        None,
        &TelemetryOptions::default(),
        &ChaosOptions::default(),
    )?
    .stdout)
}

/// Output of [`cmd_trace_with`] / [`cmd_oracle_with`]: the main report
/// plus the optional rendered metrics table (printed to stderr by the
/// binary so it composes with piped stdout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Text for stdout.
    pub stdout: String,
    /// Rendered `--metrics` table, when requested.
    pub metrics: Option<String>,
}

/// [`cmd_trace`] with telemetry and fault injection: attaches the
/// requested sinks (JSONL/VCD files are written as a side effect), arms
/// chaos when requested, and drives the stimulus. A failed reaction
/// does not abort the trace: the machine rolls back, the error is
/// reported as a summary line after the waveform, and the remaining
/// instants still run.
///
/// # Errors
///
/// Front-end, input (unknown signal), or output-file errors. Reaction
/// errors are reported in the output instead.
pub fn cmd_trace_with(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    stimulus: &str,
    engine: Option<EngineMode>,
    telemetry: &TelemetryOptions,
    chaos: &ChaosOptions,
) -> Result<TraceReport, CliError> {
    let mut machine = build_machine_with(source, main, optimize, engine)?;
    telemetry.attach(&mut machine)?;
    chaos.arm(&mut machine);
    let outputs: Vec<String> = machine
        .signals()
        .filter(|(_, d, _, _)| d.is_output())
        .map(|(n, _, _, _)| n)
        .collect();
    let refs: Vec<&str> = outputs.iter().map(String::as_str).collect();
    let wf = hiphop_runtime::Waveform::new(&refs).attach(&mut machine);
    let mut errors = Vec::new();
    let run = (|| -> Result<(), CliError> {
        for (t, instant) in stimulus.split(';').enumerate() {
            if instant.trim() == "?" {
                continue; // state inspection token: nothing to trace
            }
            stage_line(&mut machine, instant)?;
            if let Err(e) = machine.react() {
                errors.push(format!("instant {t}: error: {e}"));
            }
        }
        Ok(())
    })();
    // Flush sinks even on a failed stage so the JSONL trace keeps the
    // diagnostics that explain the failure.
    machine.finish_sinks();
    run?;
    let mut rendered = wf.borrow().render();
    for line in &errors {
        rendered.push_str(line);
        rendered.push('\n');
    }
    Ok(TraceReport {
        stdout: rendered,
        metrics: machine.metrics().map(|m| m.render()),
    })
}

/// `oracle`: runs the stimulus through BOTH the circuit machine and the
/// reference AST interpreter and compares their outputs instant by
/// instant — the differential check, exposed for artifact evaluation.
///
/// # Errors
///
/// Front-end errors, reaction errors, or a reported disagreement.
pub fn cmd_oracle(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    stimulus: &str,
) -> Result<String, CliError> {
    Ok(
        cmd_oracle_with(source, main, optimize, stimulus, None, &TelemetryOptions::default())?
            .stdout,
    )
}

/// [`cmd_oracle`] with telemetry sinks attached to the circuit machine
/// (the reference interpreter is not instrumented).
///
/// # Errors
///
/// Front-end errors, reaction errors, output-file errors, or a reported
/// disagreement.
pub fn cmd_oracle_with(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    stimulus: &str,
    engine: Option<EngineMode>,
    telemetry: &TelemetryOptions,
) -> Result<TraceReport, CliError> {
    let (module, registry) = load(source, main)?;
    let compiled = compile_module_with(&module, &registry, CompileOptions { optimize, ..CompileOptions::default() })
        .map_err(|e| fail(e.to_string()))?;
    let mut machine = Machine::new(compiled.circuit).map_err(|e| fail(e.to_string()))?;
    if let Some(mode) = engine {
        machine.set_engine(mode);
    }
    telemetry.attach(&mut machine)?;
    let mut interp =
        hiphop_interp::Interp::new(&module, &registry).map_err(|e| fail(e.to_string()))?;

    let run = oracle_loop(&mut machine, &mut interp, stimulus);
    machine.finish_sinks();
    let out = run?;
    Ok(TraceReport {
        stdout: out,
        metrics: machine.metrics().map(|m| m.render()),
    })
}

fn oracle_loop(
    machine: &mut Machine,
    interp: &mut hiphop_interp::Interp,
    stimulus: &str,
) -> Result<String, CliError> {
    let mut out = String::new();
    for (t, instant) in stimulus.split(';').enumerate() {
        let mut inputs: Vec<(String, Value)> = Vec::new();
        for tok in instant.split_whitespace() {
            let (name, value) = match tok.split_once('=') {
                Some((n, v)) => {
                    let value = v
                        .parse::<f64>()
                        .map(Value::Num)
                        .unwrap_or_else(|_| Value::Str(v.to_owned()));
                    (n.to_owned(), value)
                }
                None => (tok.to_owned(), Value::Bool(true)),
            };
            inputs.push((name, value));
        }
        let refs: Vec<(&str, Value)> = inputs
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let rm = machine
            .react_with(&refs)
            .map_err(|e| fail(format!("machine at instant {t}: {e}")))?;
        let ri = interp
            .react_with(&refs)
            .map_err(|e| fail(format!("interpreter at instant {t}: {e}")))?;
        let mut ms: Vec<String> = rm
            .outputs
            .iter()
            .map(|o| format!("{}={}:{}", o.name, o.present as u8, o.value))
            .collect();
        ms.sort();
        let mut is: Vec<String> = ri
            .outputs
            .iter()
            .map(|(n, p, v)| format!("{n}={}:{v}", *p as u8))
            .collect();
        is.sort();
        if ms != is {
            return Err(fail(format!(
                "DISAGREEMENT at instant {t}:\n  machine:     {}\n  interpreter: {}",
                ms.join(" "),
                is.join(" ")
            )));
        }
        let _ = writeln!(out, "instant {t}: {}", ms.join(" "));
    }
    let _ = writeln!(out, "machine and reference interpreter agree on all instants");
    Ok(out)
}

/// One step of the `run` REPL: parses an input line (`sig` or
/// `sig=value` tokens, whitespace-separated; empty line = empty instant),
/// reacts, and renders the present outputs.
///
/// # Errors
///
/// Fails on unknown signals or reaction errors (causality etc.).
pub fn run_line(machine: &mut Machine, line: &str) -> Result<String, CliError> {
    if line.trim() == "?" {
        // State inspection instead of a reaction.
        let mut out = String::new();
        let _ = writeln!(out, "control points:");
        let selected = machine.selected();
        if selected.is_empty() {
            let _ = writeln!(out, "  (none — terminated or not booted)");
        }
        for s in selected {
            let _ = writeln!(out, "  - {s}");
        }
        let _ = writeln!(out, "signals:");
        for (name, dir, present, value) in machine.signals() {
            let _ = writeln!(
                out,
                "  {dir:>5} {name} = {value}{}",
                if present { "  (present)" } else { "" }
            );
        }
        return Ok(out.trim_end().to_owned());
    }
    stage_line(machine, line)?;
    let r = machine.react().map_err(|e| fail(e.to_string()))?;
    let mut shown: Vec<String> = r
        .outputs
        .iter()
        .filter(|o| o.present)
        .map(|o| {
            if o.value == Value::Null {
                o.name.to_string() // pure signal
            } else {
                format!("{}={}", o.name, o.value)
            }
        })
        .collect();
    if r.terminated {
        shown.push("<terminated>".to_owned());
    }
    Ok(if shown.is_empty() {
        "(no outputs)".to_owned()
    } else {
        shown.join(" ")
    })
}

/// Stages the inputs of one instant line (`sig` / `sig=value` tokens)
/// without reacting.
///
/// # Errors
///
/// Fails on unknown signals.
pub fn stage_line(machine: &mut Machine, line: &str) -> Result<(), CliError> {
    for tok in line.split_whitespace() {
        let (name, value) = match tok.split_once('=') {
            Some((n, v)) => {
                let value = if let Ok(num) = v.parse::<f64>() {
                    Value::Num(num)
                } else if v == "true" || v == "false" {
                    Value::Bool(v == "true")
                } else {
                    Value::Str(v.to_owned())
                };
                (n, Some(value))
            }
            None => (tok, Some(Value::Bool(true))),
        };
        machine
            .set_input(name, value)
            .map_err(|e| fail(e.to_string()))?;
    }
    Ok(())
}

/// Builds the machine for `run`.
///
/// # Errors
///
/// Fails on front-end or compilation errors.
pub fn build_machine(
    source: &str,
    main: Option<&str>,
    optimize: bool,
) -> Result<Machine, CliError> {
    build_machine_with(source, main, optimize, None)
}

/// [`build_machine`] with an explicit engine override (`None` keeps the
/// automatic choice: levelized when the circuit is acyclic).
///
/// # Errors
///
/// Fails on front-end or compilation errors.
pub fn build_machine_with(
    source: &str,
    main: Option<&str>,
    optimize: bool,
    engine: Option<EngineMode>,
) -> Result<Machine, CliError> {
    let (module, registry) = load(source, main)?;
    let compiled = compile_module_with(&module, &registry, CompileOptions { optimize, ..CompileOptions::default() })
        .map_err(|e| fail(e.to_string()))?;
    let mut machine = Machine::new(compiled.circuit).map_err(|e| fail(e.to_string()))?;
    if let Some(mode) = engine {
        machine.set_engine(mode);
    }
    Ok(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABRO: &str = r#"
        module ABRO(in A, in B, in R, out O) {
           do {
              fork { await (A.now); } par { await (B.now); }
              emit O();
           } every (R.now)
        }
    "#;

    #[test]
    fn parse_args_variants() {
        let o = parse_args(&[
            "stats".into(),
            "x.hh".into(),
            "--main".into(),
            "M".into(),
            "--no-optimize".into(),
        ])
        .unwrap();
        assert_eq!(o.command, "stats");
        assert_eq!(o.file, "x.hh");
        assert_eq!(o.main.as_deref(), Some("M"));
        assert!(o.no_optimize);
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&["run".into(), "--bogus".into()]).is_err());
        assert!(parse_args(&["check".into()]).is_err());
    }

    #[test]
    fn check_and_stats() {
        let report = cmd_check(ABRO, None).unwrap();
        assert!(report.contains("ABRO: ok"), "{report}");
        let stats = cmd_stats(ABRO, Some("ABRO"), true).unwrap();
        assert!(stats.contains("nets"), "{stats}");
        // Unoptimized circuits are bigger.
        let raw = cmd_stats(ABRO, Some("ABRO"), false).unwrap();
        let get = |s: &str| -> usize {
            s.lines()
                .find(|l| l.starts_with("nets"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .unwrap()
        };
        assert!(get(&raw) > get(&stats), "raw {raw} vs opt {stats}");
    }

    #[test]
    fn pretty_reparses() {
        let printed = cmd_pretty(ABRO, None).unwrap();
        assert!(cmd_check(&printed, None).is_ok(), "{printed}");
    }

    #[test]
    fn dot_contains_graph() {
        let dot = cmd_dot(ABRO, None, true).unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("sig.status"));
    }

    #[test]
    fn run_repl_session() {
        let mut m = build_machine(ABRO, None, true).unwrap();
        assert_eq!(run_line(&mut m, "").unwrap(), "(no outputs)");
        assert_eq!(run_line(&mut m, "A").unwrap(), "(no outputs)");
        assert!(run_line(&mut m, "B").unwrap().contains("O"));
        assert_eq!(run_line(&mut m, "R").unwrap(), "(no outputs)");
        assert!(run_line(&mut m, "A B").unwrap().contains("O"));
        // Unknown signal is reported.
        assert!(run_line(&mut m, "bogus").is_err());
    }

    #[test]
    fn question_mark_inspects_state() {
        let mut m = build_machine(ABRO, None, true).unwrap();
        run_line(&mut m, "").unwrap(); // boot
        run_line(&mut m, "A").unwrap();
        let state = run_line(&mut m, "?").unwrap();
        assert!(state.contains("control points:"), "{state}");
        // One await satisfied (A), the other still pending: at least one
        // pause/halt register is set.
        assert!(state.contains("halt.reg") || state.contains("pause.reg"), "{state}");
        assert!(state.contains("in A"), "{state}");
        assert!(state.contains("out O"), "{state}");
    }

    #[test]
    fn oracle_agrees_on_abro() {
        let out = cmd_oracle(ABRO, None, true, ";A;B;R;A B").unwrap();
        assert!(out.contains("agree on all instants"), "{out}");
        assert!(out.contains("instant 2: O=1"), "{out}");
    }

    #[test]
    fn trace_renders_waveform() {
        let out = cmd_trace(ABRO, None, true, ";A;B;R;A B").unwrap();
        assert!(out.contains("instant 01234"), "{out}");
        assert!(out.contains("O"), "{out}");
        assert!(out.contains("▁▁█▁█"), "O at instants 2 and 4: {out}");
    }

    #[test]
    fn run_with_values() {
        let src = r#"
            module V(in x = 0, out y = 0) {
               do { emit y(x.nowval * 2); } every (x.now)
            }
        "#;
        let mut m = build_machine(src, None, true).unwrap();
        run_line(&mut m, "").unwrap();
        let out = run_line(&mut m, "x=21").unwrap();
        assert!(out.contains("y=42"), "{out}");
        let out = run_line(&mut m, "x=hello").unwrap();
        assert!(out.contains("y=NaN"), "{out}");
    }

    #[test]
    fn parse_args_telemetry_flags() {
        let o = parse_args(&[
            "trace".into(),
            "x.hh".into(),
            "--metrics".into(),
            "--jsonl".into(),
            "t.jsonl".into(),
            "--vcd".into(),
            "t.vcd".into(),
        ])
        .unwrap();
        assert!(o.telemetry.metrics);
        assert_eq!(o.telemetry.jsonl.as_deref(), Some("t.jsonl"));
        assert_eq!(o.telemetry.vcd.as_deref(), Some("t.vcd"));
        assert!(parse_args(&["trace".into(), "x.hh".into(), "--vcd".into()]).is_err());
    }

    #[test]
    fn parse_args_engine_flag() {
        let parse = |mode: &str| {
            parse_args(&["trace".into(), "x.hh".into(), "--engine".into(), mode.into()])
        };
        assert_eq!(parse("auto").unwrap().engine, None);
        assert_eq!(parse("levelized").unwrap().engine, Some(EngineMode::Levelized));
        assert_eq!(parse("constructive").unwrap().engine, Some(EngineMode::Constructive));
        assert_eq!(parse("naive").unwrap().engine, Some(EngineMode::Naive));
        assert_eq!(parse("hybrid").unwrap().engine, Some(EngineMode::Hybrid));
        assert_eq!(parse("sparse").unwrap().engine, Some(EngineMode::Sparse));
        assert!(parse("turbo").is_err());
        assert!(parse_args(&["trace".into(), "x.hh".into(), "--engine".into()]).is_err());
        // The one global flag also lands on the pooled subcommands.
        let o = parse_args(&["serve".into(), "--engine".into(), "sparse".into()]).unwrap();
        assert_eq!(o.serve.engine, Some(EngineMode::Sparse));
        assert_eq!(o.replay.engine, Some(EngineMode::Sparse));
        let o = parse_args(&[
            "replay".into(),
            "r.jsonl".into(),
            "--engine".into(),
            "levelized".into(),
        ])
        .unwrap();
        assert_eq!(o.replay.engine, Some(EngineMode::Levelized));
        assert_eq!(
            parse_args(&["serve".into()]).unwrap().serve.engine,
            None,
            "no flag, no override"
        );
    }

    #[test]
    fn engine_override_reaches_the_machine() {
        let auto = build_machine_with(ABRO, None, true, None).unwrap();
        assert_eq!(auto.engine(), EngineMode::Levelized, "ABRO is acyclic");
        let forced =
            build_machine_with(ABRO, None, true, Some(EngineMode::Constructive)).unwrap();
        assert_eq!(forced.engine(), EngineMode::Constructive);
        let naive = build_machine_with(ABRO, None, true, Some(EngineMode::Naive)).unwrap();
        assert_eq!(naive.engine(), EngineMode::Naive);
        let sparse = build_machine_with(ABRO, None, true, Some(EngineMode::Sparse)).unwrap();
        assert_eq!(sparse.engine(), EngineMode::Sparse, "ABRO is acyclic");
    }

    #[test]
    fn trace_and_oracle_agree_across_engines() {
        let reference = cmd_trace(ABRO, None, true, ";A;B;R;A B").unwrap();
        for mode in [
            EngineMode::Levelized,
            EngineMode::Constructive,
            EngineMode::Naive,
            EngineMode::Hybrid,
            EngineMode::Sparse,
        ] {
            let out = cmd_trace_with(
                ABRO,
                None,
                true,
                ";A;B;R;A B",
                Some(mode),
                &TelemetryOptions::default(),
                &ChaosOptions::default(),
            )
            .unwrap();
            assert_eq!(out.stdout, reference, "waveform differs under {mode}");
            let oracle = cmd_oracle_with(
                ABRO,
                None,
                true,
                ";A;B;R;A B",
                Some(mode),
                &TelemetryOptions::default(),
            )
            .unwrap();
            assert!(
                oracle.stdout.contains("agree on all instants"),
                "{mode}: {}",
                oracle.stdout
            );
        }
    }

    #[test]
    fn stats_reports_levelization() {
        let stats = cmd_stats(ABRO, Some("ABRO"), true).unwrap();
        assert!(stats.contains("engine   : levelized ("), "{stats}");
        assert!(!stats.contains("sccs"), "acyclic: no SCC lines: {stats}");
        let cyclic = r#"
            module Cyc(out X) {
               if (!X.now) { emit X(); }
            }
        "#;
        let stats = cmd_stats(cyclic, None, true).unwrap();
        assert!(stats.contains("engine   : hybrid"), "{stats}");
        assert!(stats.contains("sccs     : 1 cyclic (largest "), "{stats}");
        assert!(stats.contains("1 non-constructive"), "{stats}");
    }

    #[test]
    fn analyze_reports_and_denies_non_constructive_programs() {
        let cyclic = r#"
            module Cyc(out X) {
               if (!X.now) { emit X(); }
            }
        "#;
        // `analyze` still compiles the program (no machine is built), so
        // the HH001 deny lint is reported rather than erroring out.
        let report = cmd_analyze(cyclic, None, true, "pretty", &[]).unwrap();
        assert!(report.stdout.contains("deny[HH001] non-constructive"), "{}", report.stdout);
        assert!(!report.denied, "nothing denied without --deny");
        // Denying by name or by code trips the gate.
        for filter in ["non-constructive", "HH001", "hh001"] {
            let report =
                cmd_analyze(cyclic, None, true, "pretty", &[filter.to_owned()]).unwrap();
            assert!(report.denied, "--deny {filter} must fire");
            assert!(report.stdout.contains("(1 denied"), "{}", report.stdout);
        }
        // A clean program denies nothing.
        let clean = cmd_analyze(ABRO, None, true, "pretty", &["HH001".to_owned()]).unwrap();
        assert!(!clean.denied);
        assert!(clean.stdout.contains("ABRO: "), "{}", clean.stdout);
    }

    #[test]
    fn analyze_json_format_emits_one_object_per_lint() {
        let cyclic = r#"
            module Cyc(out X) {
               if (!X.now) { emit X(); }
            }
        "#;
        let report = cmd_analyze(cyclic, None, true, "json", &[]).unwrap();
        let first = report.stdout.lines().next().expect("at least one lint");
        assert!(first.starts_with("{\"code\":\"HH001\""), "{first}");
        assert!(first.contains("\"severity\":\"deny\""), "{first}");
        for line in report.stdout.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn parse_args_analyze_flags() {
        let o = parse_args(&[
            "analyze".into(),
            "x.hh".into(),
            "--format".into(),
            "json".into(),
            "--deny".into(),
            "HH001".into(),
            "--deny".into(),
            "dead-net".into(),
        ])
        .unwrap();
        assert_eq!(o.format, "json");
        assert_eq!(o.deny, vec!["HH001".to_owned(), "dead-net".to_owned()]);
        assert!(parse_args(&["analyze".into(), "x.hh".into(), "--format".into()]).is_err());
        assert!(parse_args(&[
            "analyze".into(),
            "x.hh".into(),
            "--format".into(),
            "yaml".into()
        ])
        .is_err());
        assert!(parse_args(&["analyze".into(), "x.hh".into(), "--deny".into()]).is_err());
        // Defaults.
        let o = parse_args(&["analyze".into(), "x.hh".into()]).unwrap();
        assert_eq!(o.format, "pretty");
        assert!(o.deny.is_empty());
        assert!(!o.facts);
        assert_eq!(o.baseline, None);
        // Dataflow flags.
        let o = parse_args(&[
            "analyze".into(),
            "x.hh".into(),
            "--facts".into(),
            "--baseline".into(),
            "base.json".into(),
        ])
        .unwrap();
        assert!(o.facts);
        assert_eq!(o.baseline.as_deref(), Some("base.json"));
        assert!(parse_args(&["analyze".into(), "x.hh".into(), "--baseline".into()]).is_err());
    }

    #[test]
    fn analyze_facts_line_is_json() {
        let report = cmd_analyze_with(ABRO, None, true, "json", &[], true, None).unwrap();
        let last = report.stdout.lines().last().expect("facts line");
        assert!(last.starts_with("{\"facts\":{\"nets\":"), "{last}");
        // Interface signals carry emit-capability verdicts; O may be
        // emitted but is not emitted in every instant.
        assert!(
            last.contains("{\"name\":\"O\",\"direction\":\"out\",\"may_emit\":true,\"must_emit\":false}"),
            "{last}"
        );
        assert!(!last.contains("\"direction\":\"local\""), "{last}");
    }

    #[test]
    fn analyze_baseline_suppresses_known_lints() {
        let cyclic = r#"
            module Cyc(out X) {
               if (!X.now) { emit X(); }
            }
        "#;
        // First run records the findings; the rerun with that baseline
        // reports nothing and no longer trips --deny.
        let first = cmd_analyze(cyclic, None, true, "json", &[]).unwrap();
        assert!(!first.denied && !first.stdout.is_empty());
        let path = std::env::temp_dir().join("hiphopc_test_baseline.json");
        std::fs::write(&path, &first.stdout).unwrap();
        let deny = vec!["HH001".to_owned()];
        let base = path.to_string_lossy().into_owned();
        let rerun =
            cmd_analyze_with(cyclic, None, true, "json", &deny, false, Some(&base)).unwrap();
        assert!(!rerun.denied, "baselined HH001 must not deny");
        assert_eq!(rerun.stdout, "", "all findings baselined: {}", rerun.stdout);
        assert!(rerun.suppressed >= 1);
        // A different program is not masked by the foreign baseline.
        let other = cmd_analyze_with(ABRO, None, true, "pretty", &[], false, Some(&base)).unwrap();
        assert!(other.stdout.contains("0 baseline-suppressed"), "{}", other.stdout);
        let _ = std::fs::remove_file(path);
        // A missing baseline file is an error, not silence.
        assert!(cmd_analyze_with(ABRO, None, true, "pretty", &[], false, Some("/nonexistent/b.json")).is_err());
    }

    #[test]
    fn stats_reports_optimizer_and_facts() {
        let stats = cmd_stats(ABRO, Some("ABRO"), true).unwrap();
        assert!(stats.contains("optimizer: "), "{stats}");
        assert!(stats.contains(" -> "), "{stats}");
        assert!(stats.contains("facts    : "), "{stats}");
        // The optimizer line is absent when the optimizer is off, the
        // facts line is not (facts are computed either way).
        let raw = cmd_stats(ABRO, Some("ABRO"), false).unwrap();
        assert!(!raw.contains("optimizer: "), "{raw}");
        assert!(raw.contains("facts    : "), "{raw}");
    }

    #[test]
    fn trace_with_metrics_and_files() {
        let dir = std::env::temp_dir();
        let vcd_path = dir.join("hiphopc_test_trace.vcd");
        let jsonl_path = dir.join("hiphopc_test_trace.jsonl");
        let telemetry = TelemetryOptions {
            metrics: true,
            jsonl: Some(jsonl_path.to_string_lossy().into_owned()),
            vcd: Some(vcd_path.to_string_lossy().into_owned()),
        };
        let report = cmd_trace_with(
            ABRO,
            None,
            true,
            ";A;B;R;A B",
            None,
            &telemetry,
            &ChaosOptions::default(),
        )
        .unwrap();
        assert!(report.stdout.contains("▁▁█▁█"), "{}", report.stdout);
        let table = report.metrics.expect("--metrics requested");
        assert!(table.contains("p95"), "{table}");
        assert!(table.contains("5 reaction(s)"), "{table}");
        let vcd = std::fs::read_to_string(&vcd_path).unwrap();
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(jsonl.contains("\"type\":\"reaction_end\""), "{jsonl}");
        let _ = std::fs::remove_file(vcd_path);
        let _ = std::fs::remove_file(jsonl_path);
    }

    #[test]
    fn oracle_with_metrics() {
        let report =
            cmd_oracle_with(ABRO, None, true, ";A;B", None, &TelemetryOptions {
                metrics: true,
                ..TelemetryOptions::default()
            })
            .unwrap();
        assert!(report.stdout.contains("agree on all instants"), "{}", report.stdout);
        assert!(report.metrics.expect("requested").contains("3 reaction(s)"));
    }

    #[test]
    fn parse_args_chaos_flags() {
        let o = parse_args(&[
            "trace".into(),
            "x.hh".into(),
            "--chaos-seed".into(),
            "42".into(),
            "--chaos-rate".into(),
            "0.25".into(),
        ])
        .unwrap();
        assert_eq!(o.chaos.seed, 42);
        assert_eq!(o.chaos.rate, 0.25);
        assert!(parse_args(&["trace".into(), "x.hh".into(), "--chaos-rate".into()]).is_err());
        assert!(parse_args(&[
            "trace".into(),
            "x.hh".into(),
            "--chaos-rate".into(),
            "1.5".into()
        ])
        .is_err());
        assert!(parse_args(&[
            "trace".into(),
            "x.hh".into(),
            "--chaos-seed".into(),
            "nope".into()
        ])
        .is_err());
    }

    #[test]
    fn chaotic_trace_reports_faults_and_keeps_going() {
        // A 100% fault rate: every instant's emit action panics, every
        // reaction rolls back — the trace must still cover the whole
        // stimulus and list one structured error per instant.
        let report = cmd_trace_with(
            ABRO,
            None,
            true,
            ";A;B;R;A B",
            None,
            &TelemetryOptions { metrics: true, ..TelemetryOptions::default() },
            &ChaosOptions { seed: 1, rate: 1.0 },
        )
        .unwrap();
        assert!(
            report.stdout.contains("error: host code panicked"),
            "{}",
            report.stdout
        );
        assert!(
            report.stdout.contains("rolled back"),
            "{}",
            report.stdout
        );
        let table = report.metrics.expect("metrics requested");
        assert!(table.contains("host panics:"), "{table}");
        // A fault-free rerun of the same stimulus is unaffected.
        let clean = cmd_trace(ABRO, None, true, ";A;B;R;A B").unwrap();
        assert!(clean.contains("▁▁█▁█"), "{clean}");
    }

    #[test]
    fn chaotic_trace_is_reproducible() {
        let run = || {
            cmd_trace_with(
                ABRO,
                None,
                true,
                ";A;B;R;A B;A;B;R;A B",
                None,
                &TelemetryOptions::default(),
                &ChaosOptions { seed: 7, rate: 0.4 },
            )
            .unwrap()
            .stdout
        };
        assert_eq!(run(), run(), "same seed, same fault schedule");
    }

    #[test]
    fn parse_args_serve_flags() {
        let o = parse_args(&[
            "serve".into(),
            "--sessions".into(),
            "64".into(),
            "--shards".into(),
            "4".into(),
            "--ticks".into(),
            "10".into(),
            "--seed".into(),
            "9".into(),
            "--shape".into(),
            "concert".into(),
            "--metrics".into(),
        ])
        .unwrap();
        assert_eq!(o.command, "serve");
        assert_eq!(o.file, "", "serve needs no source file");
        assert_eq!(o.serve.sessions, 64);
        assert_eq!(o.serve.shards, 4);
        assert_eq!(o.serve.ticks, 10);
        assert_eq!(o.serve.seed, 9);
        assert_eq!(o.serve.shape, "concert");
        assert!(o.telemetry.metrics);
        // Defaults.
        let o = parse_args(&["serve".into()]).unwrap();
        assert_eq!(o.serve, ServeOptions::default());
        assert!(parse_args(&["serve".into(), "--shards".into(), "0".into()]).is_err());
        assert!(parse_args(&["serve".into(), "--shape".into(), "opera".into()]).is_err());
        assert!(parse_args(&["serve".into(), "--sessions".into()]).is_err());
    }

    #[test]
    fn serve_runs_a_deterministic_pool() {
        let opts = ServeOptions {
            sessions: 12,
            shards: 3,
            ticks: 8,
            seed: 4,
            ..ServeOptions::default()
        };
        let report = cmd_serve(&opts, &ChaosOptions::default(), true).unwrap();
        assert!(report.json.starts_with("{\"sessions\":12,"), "{}", report.json);
        // Boot + one reaction per session per tick.
        assert!(report.json.contains("\"reactions\":108"), "{}", report.json);
        assert!(report.json.contains("\"faults\":0"), "{}", report.json);
        let table = report.metrics.expect("--metrics requested");
        assert!(
            table.contains("12 live session(s), 0 quarantined, over 3 shard(s)"),
            "{table}"
        );
        // Same seed replays the same run (timing fields aside); the
        // digest is shard-agnostic.
        let digest_of = |json: &str| {
            json.split("\"digest\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .map(str::to_owned)
        };
        let rerun = cmd_serve(&opts, &ChaosOptions::default(), false).unwrap();
        assert_eq!(digest_of(&rerun.json), digest_of(&report.json));
        let one_shard = cmd_serve(
            &ServeOptions { shards: 1, ..opts.clone() },
            &ChaosOptions::default(),
            false,
        )
        .unwrap();
        assert_eq!(digest_of(&one_shard.json), digest_of(&report.json));
    }

    #[test]
    fn sparse_serve_is_digest_identical_and_replayable() {
        let digest_of = |json: &str| {
            json.split("\"digest\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .map(str::to_owned)
        };
        let opts = ServeOptions {
            sessions: 10,
            shards: 3,
            ticks: 8,
            seed: 6,
            ..ServeOptions::default()
        };
        let reference = cmd_serve(&opts, &ChaosOptions::default(), false).unwrap();
        // An all-sparse pool reproduces the default digest on any shard
        // count…
        let rec_path = std::env::temp_dir().join("hiphopc_test_sparse_flight.jsonl");
        for shards in [3usize, 1] {
            let sparse = cmd_serve(
                &ServeOptions {
                    shards,
                    engine: Some(EngineMode::Sparse),
                    record: (shards == 3)
                        .then(|| rec_path.to_string_lossy().into_owned()),
                    ..opts.clone()
                },
                &ChaosOptions::default(),
                false,
            )
            .unwrap();
            assert_eq!(
                digest_of(&sparse.json),
                digest_of(&reference.json),
                "sparse serve diverged at {shards} shard(s)"
            );
        }
        // …and its recording verifies both back on a sparse pool and on
        // a default-engine pool: the journal is engine-agnostic.
        let file = rec_path.to_string_lossy().into_owned();
        for engine in [Some(EngineMode::Sparse), None] {
            let flags = ReplayFlags { engine, ..ReplayFlags::default() };
            let replayed = cmd_replay(&file, 2, &flags).unwrap();
            assert!(replayed.ok, "[{engine:?}] {}", replayed.json);
        }
        let _ = std::fs::remove_file(&rec_path);
    }

    #[test]
    fn serve_with_chaos_counts_faults() {
        let opts = ServeOptions {
            sessions: 8,
            shards: 2,
            ticks: 16,
            seed: 3,
            ..ServeOptions::default()
        };
        let report =
            cmd_serve(&opts, &ChaosOptions { seed: 0, rate: 0.1 }, false).unwrap();
        assert!(!report.json.contains("\"faults\":0"), "{}", report.json);
    }

    #[test]
    fn parse_args_observability_flags() {
        let o = parse_args(&[
            "serve".into(),
            "--record".into(),
            "f.jsonl".into(),
            "--trace-spans".into(),
            "t.json".into(),
            "--prom".into(),
            "m.prom".into(),
            "--watch".into(),
            "8".into(),
        ])
        .unwrap();
        assert_eq!(o.serve.record.as_deref(), Some("f.jsonl"));
        assert_eq!(o.serve.trace_spans.as_deref(), Some("t.json"));
        assert_eq!(o.serve.prom.as_deref(), Some("m.prom"));
        assert_eq!(o.serve.watch, 8);
        assert!(parse_args(&["serve".into(), "--record".into()]).is_err());

        let o = parse_args(&[
            "replay".into(),
            "f.jsonl".into(),
            "--shards".into(),
            "3".into(),
            "--from".into(),
            "2".into(),
            "--to".into(),
            "9".into(),
            "--no-verify-digests".into(),
        ])
        .unwrap();
        assert_eq!(o.command, "replay");
        assert_eq!(o.file, "f.jsonl");
        assert_eq!(o.serve.shards, 3);
        assert_eq!(
            o.replay,
            ReplayFlags {
                verify_digests: false,
                from: 2,
                to: 9,
                ..ReplayFlags::default()
            }
        );
        // Defaults: verification is on over the whole recording.
        let o = parse_args(&["replay".into(), "f.jsonl".into()]).unwrap();
        assert_eq!(o.replay, ReplayFlags::default());
        assert!(parse_args(&["replay".into()]).is_err(), "recording file required");
    }

    #[test]
    fn cohort_serve_matches_scalar_and_replays_across_modes() {
        let o = parse_args(&["serve".into(), "--cohort".into(), "wide".into()]).unwrap();
        assert_eq!(o.serve.cohort, Some(hiphop_runtime::CohortWidth::Wide));
        assert_eq!(o.replay.cohort, Some(hiphop_runtime::CohortWidth::Wide));
        assert!(parse_args(&["serve".into(), "--cohort".into(), "simd".into()]).is_err());
        assert!(parse_args(&["serve".into(), "--cohort".into()]).is_err());

        // A cohort serve is digest-identical to the scalar run…
        let rec_path = std::env::temp_dir().join("hiphopc_test_cohort_flight.jsonl");
        let opts = ServeOptions {
            sessions: 12,
            shards: 3,
            ticks: 8,
            seed: 4,
            ..ServeOptions::default()
        };
        let scalar = cmd_serve(&opts, &ChaosOptions::default(), false).unwrap();
        let cohort = cmd_serve(
            &ServeOptions {
                cohort: Some(hiphop_runtime::CohortWidth::U64),
                record: Some(rec_path.to_string_lossy().into_owned()),
                ..opts
            },
            &ChaosOptions::default(),
            false,
        )
        .unwrap();
        let digest_of = |json: &str| {
            json.split("\"digest\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .map(str::to_owned)
        };
        assert_eq!(digest_of(&cohort.json), digest_of(&scalar.json));
        // …and its recording verifies on a scalar pool and back on a
        // wide cohort pool: the journal is execution-mode-agnostic.
        let file = rec_path.to_string_lossy();
        for cohort in [None, Some(hiphop_runtime::CohortWidth::Wide)] {
            let flags = ReplayFlags { cohort, ..ReplayFlags::default() };
            let replayed = cmd_replay(&file, 2, &flags).unwrap();
            assert!(replayed.ok, "[{cohort:?}] {}", replayed.json);
        }
        let _ = std::fs::remove_file(&rec_path);
    }

    #[test]
    fn serve_record_then_replay_round_trips() {
        let dir = std::env::temp_dir();
        let rec_path = dir.join("hiphopc_test_flight.jsonl");
        let trace_path = dir.join("hiphopc_test_spans.json");
        let prom_path = dir.join("hiphopc_test_metrics.prom");
        let opts = ServeOptions {
            sessions: 10,
            shards: 4,
            ticks: 12,
            seed: 21,
            record: Some(rec_path.to_string_lossy().into_owned()),
            trace_spans: Some(trace_path.to_string_lossy().into_owned()),
            prom: Some(prom_path.to_string_lossy().into_owned()),
            ..ServeOptions::default()
        };
        // Chaos on: the replay must reproduce the fault schedule too.
        let report = cmd_serve(&opts, &ChaosOptions { seed: 0, rate: 0.05 }, false).unwrap();
        assert!(report.json.contains("\"digest\":"), "{}", report.json);

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("hiphop_pool_reactions_total"), "{prom}");

        // Replay on a different shard count: digest-identical.
        let rec_file = rec_path.to_string_lossy().into_owned();
        let replayed = cmd_replay(&rec_file, 2, &ReplayFlags::default()).unwrap();
        assert!(replayed.ok, "{}", replayed.json);
        assert!(replayed.json.contains("\"mismatches\":0"), "{}", replayed.json);

        // A mid-journal window needs a snapshot anchor: without one the
        // pool cannot reconstruct tick-8 state and must say so rather
        // than silently re-executing from tick 0.
        let err = cmd_replay(
            &rec_file,
            1,
            &ReplayFlags { from: 8, to: 12, ..ReplayFlags::default() },
        )
        .unwrap_err();
        assert!(err.to_string().contains("snapshot anchor"), "{err}");

        let _ = std::fs::remove_file(rec_path);
        let _ = std::fs::remove_file(trace_path);
        let _ = std::fs::remove_file(prom_path);
    }

    #[test]
    fn parse_args_durability_flags() {
        let o = parse_args(&[
            "serve".into(),
            "--snapshot".into(),
            "pool.jsonl".into(),
            "--snapshot-every".into(),
            "4".into(),
            "--rebalance".into(),
        ])
        .unwrap();
        assert_eq!(o.serve.snapshot.as_deref(), Some("pool.jsonl"));
        assert_eq!(o.serve.snapshot_every, 4);
        assert!(o.serve.rebalance);
        // `--snapshot` doubles as the replay-side restore anchor.
        assert_eq!(o.replay.snapshot.as_deref(), Some("pool.jsonl"));
        // Defaults: no checkpointing, no rebalancing.
        let o = parse_args(&["serve".into()]).unwrap();
        assert_eq!(o.serve.snapshot, None);
        assert_eq!(o.serve.snapshot_every, 0);
        assert!(!o.serve.rebalance);
        assert!(parse_args(&["serve".into(), "--snapshot".into()]).is_err());
        assert!(parse_args(&["serve".into(), "--snapshot-every".into()]).is_err());
        assert!(
            parse_args(&["serve".into(), "--snapshot-every".into(), "x".into()]).is_err()
        );
    }

    #[test]
    fn serve_snapshot_then_anchored_replay_round_trips() {
        let dir = std::env::temp_dir();
        let rec_path = dir.join("hiphopc_test_durability_flight.jsonl");
        let snap_path = dir.join("hiphopc_test_durability_pool.jsonl");
        let opts = ServeOptions {
            sessions: 10,
            shards: 4,
            ticks: 12,
            seed: 7,
            record: Some(rec_path.to_string_lossy().into_owned()),
            snapshot: Some(snap_path.to_string_lossy().into_owned()),
            snapshot_every: 8,
            rebalance: true,
            ..ServeOptions::default()
        };
        // Chaos on: the restored chaos RNG must resume the same fault
        // schedule for the suffix digests to match.
        let report = cmd_serve(&opts, &ChaosOptions { seed: 0, rate: 0.05 }, false).unwrap();
        assert!(report.json.contains("\"migrations\":"), "{}", report.json);

        let snap_text = std::fs::read_to_string(&snap_path).unwrap();
        assert!(snap_text.contains("\"kind\":\"pool-snapshot\""), "{snap_text}");
        let snap = hiphop_runtime::PoolSnapshot::from_jsonl(&snap_text).unwrap();
        assert_eq!(snap.ticks, 8, "last checkpoint is at beat 8 of 12");

        // Restore the beat-8 checkpoint on a different shard count and
        // re-drive only the journal suffix (ticks 8..12).
        let rec_file = rec_path.to_string_lossy().into_owned();
        let flags = ReplayFlags {
            from: 8,
            snapshot: Some(snap_path.to_string_lossy().into_owned()),
            ..ReplayFlags::default()
        };
        let replayed = cmd_replay(&rec_file, 2, &flags).unwrap();
        assert!(replayed.ok, "{}", replayed.json);
        assert!(replayed.json.contains("\"ticks\":4"), "{}", replayed.json);

        // A malformed snapshot file is a clear error, not a crash.
        std::fs::write(&snap_path, "not a snapshot\n").unwrap();
        let err = cmd_replay(&rec_file, 2, &flags).unwrap_err();
        assert!(err.to_string().contains("pool.jsonl"), "{err}");

        let _ = std::fs::remove_file(rec_path);
        let _ = std::fs::remove_file(snap_path);
    }

    #[test]
    fn replay_rejects_garbage_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("hiphopc_test_not_a_recording.jsonl");
        std::fs::write(&path, "{\"type\":\"nonsense\"}\n").unwrap();
        let err = cmd_replay(&path.to_string_lossy(), 2, &ReplayFlags::default()).unwrap_err();
        assert!(err.to_string().contains("unknown record type"), "{err}");
        let _ = std::fs::remove_file(&path);
        let err = cmd_replay("/nonexistent/x.jsonl", 2, &ReplayFlags::default()).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn ambiguous_main_is_reported() {
        let two = format!("{ABRO}\nmodule Other(in z) {{ halt; }}");
        let err = cmd_check(&two, None).unwrap_err();
        assert!(err.to_string().contains("--main"), "{err}");
        assert!(cmd_check(&two, Some("Other")).is_ok());
    }
}
