//! Differential testing: the reference AST interpreter against the
//! circuit compiler + constructive machine, on random programs and on the
//! hand-written classics. The two implementations share only the AST and
//! the expression evaluator — circuits, completion-code encodings,
//! synchronizers and reincarnation-by-duplication exist solely on the
//! machine side, making agreement strong evidence for both.

use hiphop_bench::synthetic_program;
use hiphop_core::prelude::*;
use hiphop_interp::Interp;
use hiphop_runtime::machine_for;
use hiphop_core::rng::Rng;

/// Runs the same input schedule through both implementations and returns
/// (machine trace, interpreter trace) as comparable strings.
fn traces(module: &Module, seed: u64, steps: usize) -> (Vec<String>, Vec<String>) {
    let mut machine = machine_for(module, &ModuleRegistry::new()).expect("compiles");
    let mut interp = Interp::new(module, &ModuleRegistry::new()).expect("interprets");

    let declared: Vec<String> = module
        .interface
        .iter()
        .filter(|d| d.direction.is_input())
        .map(|d| d.name.clone())
        .collect();
    let mut rng = Rng::seed_from_u64(seed);
    let mut mt = Vec::new();
    let mut it = Vec::new();

    let render_m = |r: &hiphop_runtime::Reaction| {
        let mut parts: Vec<String> = r
            .outputs
            .iter()
            .map(|o| format!("{}={}:{}", o.name, o.present as u8, o.value))
            .collect();
        parts.sort();
        format!("[{}] term={}", parts.join(","), r.terminated)
    };
    let render_i = |r: &hiphop_interp::InterpReaction| {
        let mut parts: Vec<String> = r
            .outputs
            .iter()
            .map(|(n, p, v)| format!("{n}={}:{v}", *p as u8))
            .collect();
        parts.sort();
        format!("[{}] term={}", parts.join(","), r.terminated)
    };

    mt.push(render_m(&machine.react().expect("machine boot")));
    it.push(render_i(&interp.react().expect("interp boot")));
    for _ in 0..steps {
        let mut inputs: Vec<(String, Value)> = Vec::new();
        for k in 0..8 {
            let name = format!("i{k}");
            if rng.gen_bool(0.3) && declared.contains(&name) {
                inputs.push((name, Value::from(rng.gen_range(0i64..5))));
            }
        }
        let refs: Vec<(&str, Value)> = inputs
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        mt.push(render_m(&machine.react_with(&refs).expect("machine")));
        it.push(render_i(&interp.react_with(&refs).expect("interp")));
    }
    (mt, it)
}

#[test]
fn interpreter_agrees_with_the_circuit_machine() {
    // Deterministic seed sweep (replaces the former proptest harness so
    // the repository tests offline); each case seed reproduces the
    // program exactly.
    for case in 0u64..32 {
        let seed = 0xD1FF ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let size = 10 + (Rng::seed_from_u64(seed).gen_range(0usize..110));
        let module = synthetic_program(size, seed);
        let (mt, it) = traces(&module, seed ^ 0xD1FF, 30);
        assert_eq!(mt, it, "seed {seed}, program:\n{}", module.body);
    }
}

#[test]
fn classics_agree() {
    let abro = Module::new("ABRO")
        .input(SignalDecl::new("i0", Direction::In))
        .input(SignalDecl::new("i1", Direction::In))
        .input(SignalDecl::new("i2", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out))
        .body(Stmt::loop_each(
            Delay::cond(Expr::now("i2")),
            Stmt::seq([
                Stmt::par([
                    Stmt::await_(Delay::cond(Expr::now("i0"))),
                    Stmt::await_(Delay::cond(Expr::now("i1"))),
                ]),
                Stmt::emit("o0"),
            ]),
        ));
    let (mt, it) = traces(&abro, 7, 50);
    assert_eq!(mt, it);

    // Trap + weak preemption + sustain.
    let dose = Module::new("Dose")
        .input(SignalDecl::new("i0", Direction::In))
        .input(SignalDecl::new("i1", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out))
        .output(SignalDecl::new("o1", Direction::Out))
        .body(Stmt::loop_(Stmt::seq([
            Stmt::trap(
                "OK",
                Stmt::par([
                    Stmt::seq([
                        Stmt::await_(Delay::cond(Expr::now("i0"))),
                        Stmt::exit("OK"),
                    ]),
                    Stmt::seq([
                        Stmt::await_(Delay::count(Expr::num(3.0), Expr::now("i1"))),
                        Stmt::sustain("o1"),
                    ]),
                ]),
            ),
            Stmt::emit("o0"),
            Stmt::Pause,
        ])));
    let (mt, it) = traces(&dose, 8, 60);
    assert_eq!(mt, it);

    // Suspension with a valued accumulator.
    let susp = Module::new("Susp")
        .input(SignalDecl::new("i0", Direction::In))
        .input(SignalDecl::new("i1", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out).with_init(0i64))
        .body(Stmt::suspend(
            Delay::cond(Expr::now("i0")),
            Stmt::loop_(Stmt::seq([
                Stmt::if_(
                    Expr::now("i1"),
                    Stmt::emit_val("o0", Expr::preval("o0").add(Expr::num(1.0))),
                ),
                Stmt::Pause,
            ])),
        ));
    let (mt, it) = traces(&susp, 9, 60);
    assert_eq!(mt, it);
}

#[test]
fn reincarnation_agrees() {
    // The schizophrenia torture test: the machine uses loop duplication,
    // the interpreter allocates fresh instances — both must agree.
    let module = Module::new("Schizo")
        .input(SignalDecl::new("i0", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out))
        .output(SignalDecl::new("o1", Direction::Out))
        .body(Stmt::loop_(Stmt::local(
            vec![SignalDecl::new("s", Direction::Local)],
            Stmt::par([
                Stmt::seq([
                    Stmt::if_else(Expr::now("s"), Stmt::emit("o0"), Stmt::emit("o1")),
                    Stmt::Pause,
                ]),
                Stmt::seq([Stmt::Pause, Stmt::emit("s")]),
            ]),
        )));
    let (mt, it) = traces(&module, 10, 40);
    assert_eq!(mt, it);
}

#[test]
fn pillbox_application_agrees() {
    // The real Lisinopril pillbox (parsed from its textual source) driven
    // through a full day scenario on both implementations.
    let (main, reg) = hiphop_apps::pillbox::modules();
    let mut machine = machine_for(&main, &reg).expect("compiles");
    let mut interp = Interp::new(&main, &reg).expect("interprets");

    let render_m = |r: &hiphop_runtime::Reaction| {
        let mut v: Vec<String> = r
            .outputs
            .iter()
            .map(|o| format!("{}={}:{}", o.name, o.present as u8, o.value))
            .collect();
        v.sort();
        v.join(",")
    };
    let render_i = |r: &hiphop_interp::InterpReaction| {
        let mut v: Vec<String> = r
            .outputs
            .iter()
            .map(|(n, p, val)| format!("{n}={}:{val}", *p as u8))
            .collect();
        v.sort();
        v.join(",")
    };

    assert_eq!(
        render_m(&machine.react().unwrap()),
        render_i(&interp.react().unwrap())
    );

    // Scenario: start 8PM, 10 min in press Try, 2 min later Confirm, an
    // impatient Try during the wall, then run out the 8h wall.
    let mut minute = 20 * 60u64;
    let step = |machine: &mut hiphop_runtime::Machine,
                    interp: &mut Interp,
                    extra: Option<&str>,
                    minute: u64| {
        let mut inputs: Vec<(&str, Value)> = vec![
            ("Mn", Value::Bool(true)),
            ("TimeOfDay", Value::from(minute as i64)),
        ];
        if let Some(sig) = extra {
            inputs.push((sig, Value::Bool(true)));
        }
        let rm = machine.react_with(&inputs).unwrap();
        let ri = interp.react_with(&inputs).unwrap();
        assert_eq!(render_m(&rm), render_i(&ri), "at minute {minute}");
    };

    for _ in 0..10 {
        minute += 1;
        step(&mut machine, &mut interp, None, minute);
    }
    step(&mut machine, &mut interp, Some("Try"), minute);
    for _ in 0..2 {
        minute += 1;
        step(&mut machine, &mut interp, None, minute);
    }
    step(&mut machine, &mut interp, Some("Conf"), minute);
    // Impatient Try inside the 8h wall.
    for _ in 0..30 {
        minute += 1;
        step(&mut machine, &mut interp, None, minute);
    }
    step(&mut machine, &mut interp, Some("Try"), minute);
    // Run out the wall plus the alert horizon.
    for _ in 0..500 {
        minute += 1;
        step(&mut machine, &mut interp, None, minute);
    }
    step(&mut machine, &mut interp, Some("Try"), minute);
    // Logs agree too.
    assert_eq!(machine.log(), interp.log());
}

#[test]
fn counted_suspend_and_immediate_abort_agree() {
    // Counted suspend: freeze one instant every 2 occurrences of i0.
    let susp = Module::new("CSusp")
        .input(SignalDecl::new("i0", Direction::In))
        .input(SignalDecl::new("i1", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out))
        .body(Stmt::suspend(
            Delay::count(Expr::num(2.0), Expr::now("i0")),
            Stmt::loop_(Stmt::seq([
                Stmt::if_(Expr::now("i1"), Stmt::emit("o0")),
                Stmt::Pause,
            ])),
        ));
    let (mt, it) = traces(&susp, 21, 60);
    assert_eq!(mt, it);

    // Immediate strong and weak aborts racing a sustained output.
    for weak in [false, true] {
        let m = Module::new("ImmAbort")
            .input(SignalDecl::new("i0", Direction::In))
            .output(SignalDecl::new("o0", Direction::Out))
            .body(Stmt::loop_(Stmt::seq([
                Stmt::Abort {
                    delay: Delay::immediate(Expr::now("i0")),
                    weak,
                    body: Box::new(Stmt::seq([Stmt::emit("o0"), Stmt::Pause, Stmt::Pause])),
                    loc: Loc::synthetic(),
                },
                Stmt::Pause,
            ])));
        let (mt, it) = traces(&m, 22, 60);
        assert_eq!(mt, it, "weak={weak}");
    }
}

#[test]
fn deep_nesting_torture_agrees() {
    // Traps through parallels through aborts through loops, with counted
    // delays and valued accumulation.
    let m = Module::new("Torture")
        .input(SignalDecl::new("i0", Direction::In))
        .input(SignalDecl::new("i1", Direction::In))
        .input(SignalDecl::new("i2", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out).with_init(0i64))
        .output(SignalDecl::new("o1", Direction::Out))
        .body(Stmt::loop_(Stmt::seq([
            Stmt::trap(
                "T",
                Stmt::par([
                    Stmt::abort(
                        Delay::count(Expr::num(3.0), Expr::now("i0")),
                        Stmt::loop_(Stmt::seq([
                            Stmt::if_(
                                Expr::now("i1"),
                                Stmt::emit_val("o0", Expr::preval("o0").add(Expr::num(1.0))),
                            ),
                            Stmt::Pause,
                        ])),
                    ),
                    Stmt::seq([
                        Stmt::await_(Delay::cond(Expr::now("i2"))),
                        Stmt::exit("T"),
                    ]),
                ]),
            ),
            Stmt::emit("o1"),
            Stmt::Pause,
        ])));
    let (mt, it) = traces(&m, 23, 120);
    assert_eq!(mt, it);
}

#[test]
fn local_value_broadcast_agrees() {
    // A valued local read by a sibling in the same instant: the machine
    // resolves it through emitter dependencies; the interpreter through
    // the quiescence/final-mode protocol. Both must produce o = 2·v.
    let m = Module::new("VB")
        .input(SignalDecl::new("i0", Direction::In))
        .output(SignalDecl::new("o0", Direction::Out).with_init(0i64))
        .body(Stmt::local(
            vec![SignalDecl::new("L", Direction::Local).with_init(0i64)],
            Stmt::loop_(Stmt::seq([
                Stmt::par([
                    Stmt::if_(
                        Expr::now("i0"),
                        Stmt::emit_val("L", Expr::nowval("i0").add(Expr::num(10.0))),
                    ),
                    Stmt::if_(
                        Expr::now("L"),
                        Stmt::emit_val("o0", Expr::nowval("L").mul(Expr::num(2.0))),
                    ),
                ]),
                Stmt::Pause,
            ])),
        ));
    let (mt, it) = traces(&m, 31, 40);
    assert_eq!(mt, it);
}
