//! A reference interpreter for the HipHop kernel — an implementation of
//! the synchronous semantics that shares **no code** with the circuit
//! compiler or the reactive machine, used as a differential-testing
//! oracle.
//!
//! # How it works
//!
//! Statements are executed *structurally*: each instant either starts the
//! program (`go`) or resumes it from its state tree (`res`), the direct
//! transcription of Esterel's macro-step SOS. Signal statuses are
//! *monotone knowledge*: an instant is executed in **attempts**, each
//! replayed deterministically from an instant-start snapshot;
//!
//! - reading an unknown status (or a not-yet-stable value) blocks the
//!   reading thread for this attempt (parallel siblings keep running);
//! - emissions discovered in an attempt become knowledge for the next;
//! - at quiescence (an attempt adds no knowledge), all still-unknown
//!   signals are declared absent and values become stable (the *final*
//!   attempt);
//! - an emission that contradicts a declared absence, or that follows a
//!   same-instant read of the signal's value, is a causality error.
//!
//! On logically coherent programs this coincides with the constructive
//! semantics the circuit runtime implements; pathological programs (e.g.
//! self-justifying emissions) are rejected by both, possibly with
//! different error wording. `async` is not supported (it is a host
//! bridge, not kernel semantics).

#![warn(missing_docs)]

mod state;

pub use state::{InterpError, Interp, InterpReaction};
