//! The interpreter proper: state trees, attempt execution, knowledge
//! accumulation.

use hiphop_core::ast::{AtomBody, Delay, Stmt};
use hiphop_core::desugar::desugar;
use hiphop_core::expr::{EvalEnv, Expr, SigAccess};
use hiphop_core::module::{link, Module, ModuleRegistry};
use hiphop_core::signal::{Direction, SignalDecl};
use hiphop_core::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// The linked program still contains constructs the reference
    /// interpreter does not model (`async`, `run`).
    Unsupported(String),
    /// A loop body terminated instantaneously.
    InstantaneousLoop,
    /// The instant could not be completed: a causality problem
    /// (self-justifying emission, value read before a later emission, or
    /// a dependency cycle leaving threads blocked).
    Causality(String),
    /// Front-end error while preparing the program.
    Core(String),
    /// `set_input` named an unknown or non-input signal.
    BadInput(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Unsupported(s) => write!(f, "unsupported by the reference interpreter: {s}"),
            InterpError::InstantaneousLoop => write!(f, "loop body terminated instantaneously"),
            InterpError::Causality(s) => write!(f, "causality error: {s}"),
            InterpError::Core(s) => write!(f, "{s}"),
            InterpError::BadInput(s) => write!(f, "bad input: {s}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A signal instance: interface index or local-instance index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Iface(usize),
    Local(usize),
}

/// Persistent data of a local-signal instance.
#[derive(Debug, Clone)]
struct LocalInstance {
    decl: SignalDecl,
}

/// The state tree: where control rests between instants.
#[derive(Debug, Clone, PartialEq)]
enum St {
    Paused,
    Halted,
    Seq { idx: usize, inner: Box<St> },
    Par { branches: Vec<Option<St>> },
    Loop { inner: Box<St> },
    If { then_taken: bool, inner: Box<St> },
    Abort { counter: Option<f64>, inner: Box<St> },
    Suspend { counter: Option<f64>, inner: Box<St> },
    Trap { inner: Box<St> },
    Local { instances: Vec<usize>, inner: Box<St> },
}

/// Completion of a statement within an attempt.
#[derive(Debug, Clone, PartialEq)]
enum K {
    Term,
    Pause(St),
    /// Exit of the trap `levels` above (0 = innermost enclosing).
    Exit(usize),
    /// Some thread is waiting for signal knowledge.
    Blocked,
}

/// The result of one interpreted reaction.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpReaction {
    /// (name, present, value) for each output-direction interface signal.
    pub outputs: Vec<(String, bool, Value)>,
    /// Whether the program terminated.
    pub terminated: bool,
}

impl InterpReaction {
    /// Presence of an output.
    pub fn present(&self, name: &str) -> bool {
        self.outputs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, p, _)| *p)
            .unwrap_or(false)
    }
    /// Value of an output.
    pub fn value(&self, name: &str) -> Value {
        self.outputs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, v)| v.clone())
            .unwrap_or(Value::Null)
    }
}

/// The reference interpreter.
pub struct Interp {
    program: Stmt,
    interface: Vec<SignalDecl>,
    // Persistent machine state.
    values: Vec<Value>,             // interface values
    local_values: Vec<Value>,       // per local instance
    locals: Vec<LocalInstance>,
    prev_present: HashMap<Key, bool>,
    vars: HashMap<String, Value>,
    state: Option<St>,
    booted: bool,
    terminated: bool,
    staged: Vec<(usize, Option<Value>)>,
    log: Vec<String>,
}

impl fmt::Debug for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("booted", &self.booted)
            .field("terminated", &self.terminated)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Per-attempt working data.

struct Attempt {
    know: HashMap<Key, bool>,
    final_mode: bool,
    emitted: HashMap<Key, bool>,
    values: HashMap<Key, Value>,
    prev_values: HashMap<Key, Value>,
    emit_count: HashMap<Key, u32>,
    assumed_absent: Vec<Key>,
    value_read: Vec<Key>,
    vars: HashMap<String, Value>,
    // Fresh local instances allocated during this attempt (decl clones);
    // indices start at the persistent high-water mark.
    fresh_locals: Vec<LocalInstance>,
    fresh_values: Vec<Value>,
    base_locals: usize,
    blocked: bool,
    log: Vec<String>,
}

struct Ctx<'a> {
    attempt: &'a mut Attempt,
    scopes: Vec<HashMap<String, Key>>,
    traps: Vec<String>,
    loop_guard: u32,
    iface_dirs: Vec<Direction>,
    pre_present: HashMap<Key, bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Need {
    Ready,
    Blocked,
}

impl Ctx<'_> {
    fn resolve(&self, name: &str) -> Option<Key> {
        for scope in self.scopes.iter().rev() {
            if let Some(k) = scope.get(name) {
                return Some(*k);
            }
        }
        None
    }

    fn status(&mut self, key: Key) -> Result<Option<bool>, InterpError> {
        if let Some(&v) = self.attempt.know.get(&key) {
            return Ok(Some(v));
        }
        if self.attempt.emitted.get(&key).copied().unwrap_or(false) {
            return Ok(Some(true));
        }
        if self.attempt.final_mode {
            self.attempt.assumed_absent.push(key);
            return Ok(Some(false));
        }
        Ok(None)
    }

    fn decl_of(&self, interp: &Interp, key: Key) -> SignalDecl {
        match key {
            Key::Iface(i) => interp.interface[i].clone(),
            Key::Local(i) => {
                if i < interp.locals.len() {
                    interp.locals[i].decl.clone()
                } else {
                    self.attempt.fresh_locals[i - interp.locals.len()].decl.clone()
                }
            }
        }
    }

    /// Checks that every causal read of `expr` is decidable; returns
    /// `Need::Blocked` (and marks the attempt) otherwise.
    fn ready(&mut self, interp: &Interp, expr: &Expr) -> Result<Need, InterpError> {
        let _ = interp;
        for (name, access) in expr.signal_reads() {
            let Some(key) = self.resolve(&name) else {
                return Err(InterpError::Core(format!("unbound signal `{name}`")));
            };
            match access {
                SigAccess::Pre | SigAccess::PreVal => {}
                SigAccess::Now => {
                    if self.status(key)?.is_none() {
                        self.attempt.blocked = true;
                        return Ok(Need::Blocked);
                    }
                }
                SigAccess::NowVal => {
                    // Inputs are stable; otherwise a signal's value is
                    // readable once its status is decided *absent*, or in
                    // final mode (all emissions done) — reads are recorded
                    // so later emissions are flagged.
                    let is_input = matches!(key, Key::Iface(i)
                        if self.decl_of_dir(i).is_input());
                    match self.status(key)? {
                        Some(false) => {}
                        _ if is_input => {}
                        Some(true) if self.attempt.final_mode => {
                            self.attempt.value_read.push(key);
                        }
                        _ => {
                            self.attempt.blocked = true;
                            return Ok(Need::Blocked);
                        }
                    }
                }
            }
        }
        Ok(Need::Ready)
    }

    fn decl_of_dir(&self, iface_idx: usize) -> Direction {
        self.iface_dirs[iface_idx]
    }

    fn eval(&mut self, interp: &Interp, expr: &Expr) -> Result<Result<Value, ()>, InterpError> {
        if self.ready(interp, expr)? == Need::Blocked {
            return Ok(Err(()));
        }
        let env = AttemptEnv { ctx: self };
        Ok(Ok(expr.eval(&env)))
    }
}

struct AttemptEnv<'a, 'b> {
    ctx: &'a Ctx<'b>,
}

impl EvalEnv for AttemptEnv<'_, '_> {
    fn now(&self, name: &str) -> bool {
        let Some(key) = self.ctx.resolve(name) else { return false };
        if let Some(&v) = self.ctx.attempt.know.get(&key) {
            return v;
        }
        self.ctx.attempt.emitted.get(&key).copied().unwrap_or(false)
    }
    fn pre(&self, name: &str) -> bool {
        let Some(key) = self.ctx.resolve(name) else { return false };
        self.ctx.attempt_pre(key)
    }
    fn nowval(&self, name: &str) -> Value {
        let Some(key) = self.ctx.resolve(name) else { return Value::Null };
        self.ctx.attempt.values.get(&key).cloned().unwrap_or(Value::Null)
    }
    fn preval(&self, name: &str) -> Value {
        let Some(key) = self.ctx.resolve(name) else { return Value::Null };
        self.ctx
            .attempt
            .prev_values
            .get(&key)
            .cloned()
            .unwrap_or(Value::Null)
    }
    fn var(&self, name: &str) -> Value {
        self.ctx.attempt.vars.get(name).cloned().unwrap_or(Value::Null)
    }
}

impl Ctx<'_> {
    fn attempt_pre(&self, key: Key) -> bool {
        self.pre_present.get(&key).copied().unwrap_or(false)
    }
}

impl Interp {
    /// Links and desugars `main`, producing a fresh interpreter.
    ///
    /// # Errors
    ///
    /// Propagates linking errors; `async` statements are rejected.
    pub fn new(main: &Module, registry: &ModuleRegistry) -> Result<Interp, InterpError> {
        let linked = link(main, registry).map_err(|e| InterpError::Core(e.to_string()))?;
        let body = desugar(&linked.body);
        let mut unsupported = None;
        body.visit(&mut |s| {
            if matches!(s, Stmt::Async { .. }) && unsupported.is_none() {
                unsupported = Some("async".to_owned());
            }
        });
        if let Some(u) = unsupported {
            return Err(InterpError::Unsupported(u));
        }
        let values = linked
            .interface
            .iter()
            .map(|d| d.init.clone().unwrap_or(Value::Null))
            .collect();
        Ok(Interp {
            program: body,
            interface: linked.interface,
            values,
            local_values: Vec::new(),
            locals: Vec::new(),
            prev_present: HashMap::new(),
            vars: HashMap::new(),
            state: None,
            booted: false,
            terminated: false,
            staged: Vec::new(),
            log: Vec::new(),
        })
    }

    /// Stages an input for the next reaction.
    ///
    /// # Errors
    ///
    /// Unknown or non-input signals are rejected.
    pub fn set_input(&mut self, name: &str, value: Option<Value>) -> Result<(), InterpError> {
        let idx = self
            .interface
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| InterpError::BadInput(format!("unknown signal `{name}`")))?;
        if !self.interface[idx].direction.is_input() {
            return Err(InterpError::BadInput(format!("`{name}` is not an input")));
        }
        self.staged.push((idx, value));
        Ok(())
    }

    /// Stages inputs and reacts.
    ///
    /// # Errors
    ///
    /// Propagates staging and reaction errors.
    pub fn react_with(&mut self, inputs: &[(&str, Value)]) -> Result<InterpReaction, InterpError> {
        for (n, v) in inputs {
            self.set_input(n, Some(v.clone()))?;
        }
        self.react()
    }

    /// Whether the program has terminated.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// The interpreter log (`hop { log(...) }`).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Executes one reaction.
    ///
    /// # Errors
    ///
    /// Causality problems and unsupported constructs.
    pub fn react(&mut self) -> Result<InterpReaction, InterpError> {
        let staged = std::mem::take(&mut self.staged);
        if self.terminated {
            return Ok(self.snapshot_outputs(&HashMap::new()));
        }

        // Instant-start knowledge: inputs fully decided.
        let mut know: HashMap<Key, bool> = HashMap::new();
        let mut input_values: HashMap<Key, Value> = HashMap::new();
        let mut input_counts: HashMap<Key, u32> = HashMap::new();
        for (i, d) in self.interface.iter().enumerate() {
            if d.direction.is_input() {
                know.insert(Key::Iface(i), false);
            }
        }
        for (idx, v) in &staged {
            know.insert(Key::Iface(*idx), true);
            if let Some(v) = v {
                input_values.insert(Key::Iface(*idx), v.clone());
                input_counts.insert(Key::Iface(*idx), 1);
            }
        }

        let prev_values: HashMap<Key, Value> = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (Key::Iface(i), v.clone()))
            .chain(
                self.local_values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (Key::Local(i), v.clone())),
            )
            .collect();

        let mut final_mode = false;
        let max_attempts = 2 * (self.interface.len() + self.locals.len() + 8);
        for _ in 0..max_attempts {
            let mut attempt = Attempt {
                know: know.clone(),
                final_mode,
                emitted: HashMap::new(),
                values: {
                    let mut v = prev_values.clone();
                    v.extend(input_values.clone());
                    v
                },
                prev_values: prev_values.clone(),
                emit_count: input_counts.clone(),
                assumed_absent: Vec::new(),
                value_read: Vec::new(),
                vars: self.vars.clone(),
                fresh_locals: Vec::new(),
                fresh_values: Vec::new(),
                base_locals: self.locals.len(),
                blocked: false,
                log: Vec::new(),
            };
            let mut ctx = Ctx {
                attempt: &mut attempt,
                scopes: vec![self
                    .interface
                    .iter()
                    .enumerate()
                    .map(|(i, d)| (d.name.clone(), Key::Iface(i)))
                    .collect()],
                traps: Vec::new(),
                loop_guard: 0,
                iface_dirs: self.interface.iter().map(|d| d.direction).collect(),
                pre_present: self.prev_present.clone(),
            };

            let program = self.program.clone();
            let result = if !self.booted {
                self.go(&program, &mut ctx)?
            } else {
                let st = self.state.clone().expect("booted implies state");
                self.res(&program, st, &mut ctx)?
            };

            // Fold emissions into knowledge.
            let mut gained = false;
            for (&k, &e) in &attempt.emitted {
                if e && know.insert(k, true) != Some(true) {
                    gained = true;
                }
            }

            let blocked = matches!(result, K::Blocked) || attempt.blocked;
            if !blocked {
                // Contradiction checks.
                for k in &attempt.assumed_absent {
                    if attempt.emitted.get(k).copied().unwrap_or(false) {
                        return Err(InterpError::Causality(format!(
                            "signal {k:?} emitted after being assumed absent"
                        )));
                    }
                }
                // Commit.
                self.booted = true;
                match result {
                    K::Term => {
                        self.terminated = true;
                        self.state = None;
                    }
                    K::Pause(st) => self.state = Some(st),
                    K::Exit(_) => {
                        return Err(InterpError::Core("uncaught trap exit".into()))
                    }
                    K::Blocked => unreachable!(),
                }
                for (k, v) in &attempt.values {
                    match *k {
                        Key::Iface(i) => self.values[i] = v.clone(),
                        Key::Local(i) => {
                            if i < self.local_values.len() {
                                self.local_values[i] = v.clone();
                            }
                        }
                    }
                }
                self.locals.extend(attempt.fresh_locals.clone());
                self.local_values.extend(attempt.fresh_values.clone());
                // Fresh-local values may have been updated under their key.
                for (k, v) in &attempt.values {
                    if let Key::Local(i) = *k {
                        if i < self.local_values.len() {
                            self.local_values[i] = v.clone();
                        }
                    }
                }
                self.vars = attempt.vars.clone();
                self.log.extend(attempt.log.clone());
                // pre statuses for the next instant.
                let mut present: HashMap<Key, bool> = HashMap::new();
                for (k, v) in &know {
                    present.insert(*k, *v);
                }
                for (k, e) in &attempt.emitted {
                    if *e {
                        present.insert(*k, true);
                    }
                }
                self.prev_present = present;
                return Ok(self.snapshot_outputs(&know));
            }

            if !gained {
                if final_mode {
                    return Err(InterpError::Causality(
                        "instant blocked with no further knowledge (dependency cycle)".into(),
                    ));
                }
                final_mode = true;
            }
        }
        Err(InterpError::Causality("attempt budget exhausted".into()))
    }

    fn snapshot_outputs(&self, know: &HashMap<Key, bool>) -> InterpReaction {
        let outputs = self
            .interface
            .iter()
            .enumerate()
            .filter(|(_, d)| d.direction.is_output())
            .map(|(i, d)| {
                (
                    d.name.clone(),
                    know.get(&Key::Iface(i)).copied().unwrap_or(false),
                    self.values[i].clone(),
                )
            })
            .collect();
        InterpReaction {
            outputs,
            terminated: self.terminated,
        }
    }
}

// ---------------------------------------------------------------------
// Statement walkers.

impl Interp {
    fn emit_signal(
        &self,
        ctx: &mut Ctx<'_>,
        name: &str,
        value: Option<&Expr>,
    ) -> Result<K, InterpError> {
        let Some(key) = ctx.resolve(name) else {
            return Err(InterpError::Core(format!("unbound signal `{name}`")));
        };
        let v = match value {
            None => None,
            Some(e) => match ctx.eval(self, e)? {
                Err(()) => return Ok(K::Blocked),
                Ok(v) => Some(v),
            },
        };
        if ctx.attempt.value_read.contains(&key) {
            return Err(InterpError::Causality(format!(
                "signal `{name}` emitted after its value was read this instant"
            )));
        }
        if ctx.attempt.assumed_absent.contains(&key) {
            return Err(InterpError::Causality(format!(
                "signal `{name}` emitted after being assumed absent"
            )));
        }
        ctx.attempt.emitted.insert(key, true);
        if let Some(v) = v {
            let count = ctx.attempt.emit_count.entry(key).or_insert(0);
            if *count == 0 {
                ctx.attempt.values.insert(key, v);
            } else {
                let decl = ctx.decl_of(self, key);
                match decl.combine {
                    Some(c) => {
                        let old = ctx.attempt.values.get(&key).cloned().unwrap_or(Value::Null);
                        ctx.attempt.values.insert(key, c.apply(&old, &v));
                    }
                    None => {
                        return Err(InterpError::Causality(format!(
                            "signal `{name}` emitted twice without combine"
                        )))
                    }
                }
            }
            *ctx.attempt.emit_count.get_mut(&key).expect("just inserted") += 1;
        }
        Ok(K::Term)
    }

    fn run_atom(&self, ctx: &mut Ctx<'_>, body: &AtomBody) -> Result<K, InterpError> {
        match body {
            AtomBody::Assign(var, e) => match ctx.eval(self, e)? {
                Err(()) => Ok(K::Blocked),
                Ok(v) => {
                    ctx.attempt.vars.insert(var.clone(), v);
                    Ok(K::Term)
                }
            },
            AtomBody::Log(e) => match ctx.eval(self, e)? {
                Err(()) => Ok(K::Blocked),
                Ok(v) => {
                    ctx.attempt.log.push(v.to_display_string());
                    Ok(K::Term)
                }
            },
            AtomBody::Host { .. } => Err(InterpError::Unsupported("host atom".into())),
        }
    }

    /// Evaluates a delay at a resumption point; `counter` is the live
    /// counter for counted delays. Returns None when blocked.
    fn delay_fires(
        &self,
        ctx: &mut Ctx<'_>,
        delay: &Delay,
        counter: &mut Option<f64>,
    ) -> Result<Option<bool>, InterpError> {
        match ctx.eval(self, &delay.cond)? {
            Err(()) => Ok(None),
            Ok(v) => {
                if !v.truthy() {
                    return Ok(Some(false));
                }
                match counter {
                    None => Ok(Some(true)),
                    Some(c) => {
                        *c -= 1.0;
                        Ok(Some(*c <= 0.0))
                    }
                }
            }
        }
    }

    fn init_counter(
        &self,
        ctx: &mut Ctx<'_>,
        delay: &Delay,
    ) -> Result<Result<Option<f64>, ()>, InterpError> {
        match &delay.count {
            None => Ok(Ok(None)),
            Some(e) => match ctx.eval(self, e)? {
                Err(()) => Ok(Err(())),
                Ok(v) => Ok(Ok(Some(v.as_num().floor()))),
            },
        }
    }

    fn go(&self, stmt: &Stmt, ctx: &mut Ctx<'_>) -> Result<K, InterpError> {
        match stmt {
            Stmt::Nothing => Ok(K::Term),
            Stmt::Pause => Ok(K::Pause(St::Paused)),
            Stmt::Halt => Ok(K::Pause(St::Halted)),
            Stmt::Emit { signal, value, .. } => self.emit_signal(ctx, signal, value.as_ref()),
            Stmt::Atom { body, .. } => self.run_atom(ctx, body),
            Stmt::Seq(ss) => self.seq_from(ss, 0, ctx),
            Stmt::Par(ss) => {
                let mut branches = Vec::with_capacity(ss.len());
                let mut ks = Vec::with_capacity(ss.len());
                for s in ss {
                    let k = self.go(s, ctx)?;
                    ks.push(match k {
                        K::Pause(st) => {
                            branches.push(Some(st));
                            K::Pause(St::Paused) // placeholder marker
                        }
                        other => {
                            branches.push(None);
                            other
                        }
                    });
                }
                Self::join_par(branches, ks)
            }
            Stmt::Loop(body) => {
                ctx.loop_guard += 1;
                if ctx.loop_guard > 1_000 {
                    return Err(InterpError::InstantaneousLoop);
                }
                match self.go(body, ctx)? {
                    K::Term => self.go(stmt, ctx), // instantaneous restart guard above
                    K::Pause(st) => Ok(K::Pause(St::Loop { inner: Box::new(st) })),
                    other => Ok(other),
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => match ctx.eval(self, cond)? {
                Err(()) => Ok(K::Blocked),
                Ok(v) => {
                    let taken = v.truthy();
                    let branch = if taken { then_branch } else { else_branch };
                    match self.go(branch, ctx)? {
                        K::Pause(st) => Ok(K::Pause(St::If {
                            then_taken: taken,
                            inner: Box::new(st),
                        })),
                        other => Ok(other),
                    }
                }
            },
            Stmt::Abort {
                delay, weak, body, ..
            } => {
                let counter = match self.init_counter(ctx, delay)? {
                    Err(()) => return Ok(K::Blocked),
                    Ok(c) => c,
                };
                if delay.immediate {
                    match ctx.eval(self, &delay.cond)? {
                        Err(()) => return Ok(K::Blocked),
                        Ok(v) if v.truthy() => {
                            if !*weak {
                                return Ok(K::Term);
                            }
                            // Weak immediate: body runs once, then dies
                            // (exits still win).
                            return match self.go(body, ctx)? {
                                K::Exit(n) => Ok(K::Exit(n)),
                                K::Blocked => Ok(K::Blocked),
                                _ => Ok(K::Term),
                            };
                        }
                        Ok(_) => {}
                    }
                }
                match self.go(body, ctx)? {
                    K::Pause(st) => Ok(K::Pause(St::Abort {
                        counter,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            Stmt::Suspend { delay, body, .. } => {
                let counter = match self.init_counter(ctx, delay)? {
                    Err(()) => return Ok(K::Blocked),
                    Ok(c) => c,
                };
                match self.go(body, ctx)? {
                    K::Pause(st) => Ok(K::Pause(St::Suspend {
                        counter,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            Stmt::Trap { label, body, .. } => {
                ctx.traps.push(label.clone());
                let k = self.go(body, ctx);
                ctx.traps.pop();
                match k? {
                    K::Exit(0) => Ok(K::Term),
                    K::Exit(n) => Ok(K::Exit(n - 1)),
                    K::Pause(st) => Ok(K::Pause(St::Trap { inner: Box::new(st) })),
                    other => Ok(other),
                }
            }
            Stmt::Exit { label, .. } => {
                let pos = ctx
                    .traps
                    .iter()
                    .rposition(|t| t == label)
                    .ok_or_else(|| InterpError::Core(format!("unknown trap `{label}`")))?;
                Ok(K::Exit(ctx.traps.len() - 1 - pos))
            }
            Stmt::Local { decls, body, .. } => {
                // Allocate fresh instances.
                let mut scope = HashMap::new();
                let mut instances = Vec::new();
                for d in decls {
                    let idx = ctx.attempt.base_locals + ctx.attempt.fresh_locals.len();
                    ctx.attempt.fresh_locals.push(LocalInstance { decl: d.clone() });
                    ctx.attempt
                        .fresh_values
                        .push(d.init.clone().unwrap_or(Value::Null));
                    ctx.attempt
                        .values
                        .insert(Key::Local(idx), d.init.clone().unwrap_or(Value::Null));
                    scope.insert(d.name.clone(), Key::Local(idx));
                    instances.push(idx);
                }
                ctx.scopes.push(scope);
                let k = self.go(body, ctx);
                ctx.scopes.pop();
                match k? {
                    K::Pause(st) => Ok(K::Pause(St::Local {
                        instances,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            Stmt::Async { .. } => Err(InterpError::Unsupported("async".into())),
            Stmt::Run { module, .. } => {
                Err(InterpError::Unsupported(format!("unlinked run {module}")))
            }
            Stmt::Await { .. } | Stmt::Sustain { .. } | Stmt::Every { .. } | Stmt::LoopEach { .. } => {
                Err(InterpError::Unsupported("underived statement".into()))
            }
        }
    }

    fn seq_from(&self, ss: &[Stmt], start: usize, ctx: &mut Ctx<'_>) -> Result<K, InterpError> {
        for (i, s) in ss.iter().enumerate().skip(start) {
            match self.go(s, ctx)? {
                K::Term => continue,
                K::Pause(st) => {
                    return Ok(K::Pause(St::Seq {
                        idx: i,
                        inner: Box::new(st),
                    }))
                }
                other => return Ok(other),
            }
        }
        Ok(K::Term)
    }

    fn join_par(branches: Vec<Option<St>>, ks: Vec<K>) -> Result<K, InterpError> {
        if ks.iter().any(|k| matches!(k, K::Blocked)) {
            return Ok(K::Blocked);
        }
        let max_exit = ks
            .iter()
            .filter_map(|k| match k {
                K::Exit(n) => Some(*n),
                _ => None,
            })
            .max();
        if let Some(n) = max_exit {
            return Ok(K::Exit(n));
        }
        if branches.iter().all(Option::is_none) {
            Ok(K::Term)
        } else {
            Ok(K::Pause(St::Par { branches }))
        }
    }

    fn res(&self, stmt: &Stmt, st: St, ctx: &mut Ctx<'_>) -> Result<K, InterpError> {
        match (stmt, st) {
            (Stmt::Pause, St::Paused) => Ok(K::Term),
            (Stmt::Halt, St::Halted) => Ok(K::Pause(St::Halted)),
            (Stmt::Seq(ss), St::Seq { idx, inner }) => {
                match self.res(&ss[idx], *inner, ctx)? {
                    K::Term => self.seq_from(ss, idx + 1, ctx),
                    K::Pause(st) => Ok(K::Pause(St::Seq {
                        idx,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            (Stmt::Par(ss), St::Par { branches }) => {
                let mut new_branches = Vec::with_capacity(ss.len());
                let mut ks = Vec::with_capacity(ss.len());
                for (s, b) in ss.iter().zip(branches) {
                    match b {
                        None => {
                            new_branches.push(None);
                            ks.push(K::Term);
                        }
                        Some(st) => match self.res(s, st, ctx)? {
                            K::Pause(st2) => {
                                new_branches.push(Some(st2));
                                ks.push(K::Pause(St::Paused));
                            }
                            other => {
                                new_branches.push(None);
                                ks.push(other);
                            }
                        },
                    }
                }
                Self::join_par(new_branches, ks)
            }
            (Stmt::Loop(body), St::Loop { inner }) => {
                match self.res(body, *inner, ctx)? {
                    K::Term => {
                        ctx.loop_guard += 1;
                        if ctx.loop_guard > 1_000 {
                            return Err(InterpError::InstantaneousLoop);
                        }
                        match self.go(body, ctx)? {
                            K::Term => Err(InterpError::InstantaneousLoop),
                            K::Pause(st) => Ok(K::Pause(St::Loop { inner: Box::new(st) })),
                            other => Ok(other),
                        }
                    }
                    K::Pause(st) => Ok(K::Pause(St::Loop { inner: Box::new(st) })),
                    other => Ok(other),
                }
            }
            (
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                },
                St::If { then_taken, inner },
            ) => {
                let branch = if then_taken { then_branch } else { else_branch };
                match self.res(branch, *inner, ctx)? {
                    K::Pause(st) => Ok(K::Pause(St::If {
                        then_taken,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            (Stmt::Abort { delay, weak, body, .. }, St::Abort { mut counter, inner }) => {
                let fired = match self.delay_fires(ctx, delay, &mut counter)? {
                    None => return Ok(K::Blocked),
                    Some(f) => f,
                };
                if fired && !*weak {
                    return Ok(K::Term);
                }
                let k = self.res(body, *inner, ctx)?;
                if fired {
                    // Weak: the body ran its final instant; exits dominate.
                    return match k {
                        K::Exit(n) => Ok(K::Exit(n)),
                        K::Blocked => Ok(K::Blocked),
                        _ => Ok(K::Term),
                    };
                }
                match k {
                    K::Pause(st) => Ok(K::Pause(St::Abort {
                        counter,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            (Stmt::Suspend { delay, body, .. }, St::Suspend { mut counter, inner }) => {
                let fired = match self.delay_fires(ctx, delay, &mut counter)? {
                    None => return Ok(K::Blocked),
                    Some(f) => f,
                };
                if fired {
                    return Ok(K::Pause(St::Suspend { counter, inner }));
                }
                match self.res(body, *inner, ctx)? {
                    K::Pause(st) => Ok(K::Pause(St::Suspend {
                        counter,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            (Stmt::Trap { label, body, .. }, St::Trap { inner }) => {
                ctx.traps.push(label.clone());
                let k = self.res(body, *inner, ctx);
                ctx.traps.pop();
                match k? {
                    K::Exit(0) => Ok(K::Term),
                    K::Exit(n) => Ok(K::Exit(n - 1)),
                    K::Pause(st) => Ok(K::Pause(St::Trap { inner: Box::new(st) })),
                    other => Ok(other),
                }
            }
            (Stmt::Local { decls, body, .. }, St::Local { instances, inner }) => {
                let mut scope = HashMap::new();
                for (d, &idx) in decls.iter().zip(&instances) {
                    scope.insert(d.name.clone(), Key::Local(idx));
                }
                ctx.scopes.push(scope);
                let k = self.res(body, *inner, ctx);
                ctx.scopes.pop();
                match k? {
                    K::Pause(st) => Ok(K::Pause(St::Local {
                        instances,
                        inner: Box::new(st),
                    })),
                    other => Ok(other),
                }
            }
            (s, st) => Err(InterpError::Core(format!(
                "state/statement mismatch: {s:?} vs {st:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiphop_core::ast::Delay as D;

    fn interp(body: Stmt, signals: &[(&str, Direction)]) -> Interp {
        let mut m = Module::new("t");
        for (n, d) in signals {
            m = m.signal(SignalDecl::new(*n, *d));
        }
        Interp::new(&m.body(body), &ModuleRegistry::new()).expect("builds")
    }

    const IN: Direction = Direction::In;
    const OUT: Direction = Direction::Out;

    #[test]
    fn abro_in_the_interpreter() {
        let body = Stmt::loop_each(
            D::cond(Expr::now("R")),
            Stmt::seq([
                Stmt::par([
                    Stmt::await_(D::cond(Expr::now("A"))),
                    Stmt::await_(D::cond(Expr::now("B"))),
                ]),
                Stmt::emit("O"),
            ]),
        );
        let mut i = interp(body, &[("A", IN), ("B", IN), ("R", IN), ("O", OUT)]);
        i.react().unwrap();
        let t = Value::Bool(true);
        assert!(!i.react_with(&[("A", t.clone())]).unwrap().present("O"));
        assert!(i.react_with(&[("B", t.clone())]).unwrap().present("O"));
        assert!(!i.react_with(&[("A", t.clone())]).unwrap().present("O"));
        i.react_with(&[("R", t.clone())]).unwrap();
        i.react_with(&[("B", t.clone())]).unwrap();
        assert!(i.react_with(&[("A", t.clone())]).unwrap().present("O"));
    }

    #[test]
    fn local_broadcast_needs_a_second_attempt() {
        let body = Stmt::local(
            vec![SignalDecl::new("L", Direction::Local)],
            Stmt::par([
                Stmt::if_(Expr::now("L"), Stmt::emit("O")),
                Stmt::emit("L"),
            ]),
        );
        let mut i = interp(body, &[("O", OUT)]);
        assert!(i.react().unwrap().present("O"));
    }

    #[test]
    fn causality_errors_detected() {
        let body = Stmt::local(
            vec![SignalDecl::new("X", Direction::Local)],
            Stmt::if_(Expr::now("X").not(), Stmt::emit("X")),
        );
        let mut i = interp(body, &[]);
        assert!(matches!(i.react(), Err(InterpError::Causality(_))));
    }

    #[test]
    fn reincarnated_local_is_fresh() {
        let body = Stmt::loop_(Stmt::local(
            vec![SignalDecl::new("S", Direction::Local)],
            Stmt::seq([
                Stmt::if_else(Expr::now("S"), Stmt::emit("O1"), Stmt::emit("O2")),
                Stmt::Pause,
                Stmt::emit("S"),
            ]),
        ));
        let mut i = interp(body, &[("O1", OUT), ("O2", OUT)]);
        for _ in 0..4 {
            let r = i.react().unwrap();
            assert!(!r.present("O1"));
            assert!(r.present("O2"));
        }
    }

    #[test]
    fn async_is_rejected() {
        let err = Interp::new(
            &Module::new("t").body(Stmt::async_(Default::default())),
            &ModuleRegistry::new(),
        )
        .unwrap_err();
        assert!(matches!(err, InterpError::Unsupported(_)));
    }
}
