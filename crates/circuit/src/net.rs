//! Nets — the wires of an augmented boolean circuit.
//!
//! "A net is a hardware name for boolean variables" (paper §5.1). Input
//! nets have no equation; other nets have a single defining equation:
//! combinational (`And`/`Or` over possibly negated fanins), a register
//! output (unit delay), a constant, or a *test* (a host data expression
//! evaluated when the control fanin is true). Nets can additionally be
//! *augmented* with an action (a side effect run when the net stabilizes
//! to 1) and with data dependencies to other nets, which constrain the
//! micro-scheduling exactly as described in the paper.

use hiphop_core::ast::{AsyncSpec, AtomBody, Loc};
use hiphop_core::expr::Expr;
use hiphop_core::signal::{Combine, Direction};
use hiphop_core::value::Value;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The index as usize.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a net within its circuit.
    NetId
);
id_type!(
    /// Identifier of a register.
    RegId
);
id_type!(
    /// Identifier of a signal instance.
    SignalId
);
id_type!(
    /// Identifier of a delay counter (counted `await`/`abort`).
    CounterId
);
id_type!(
    /// Identifier of an `async` statement instance in the circuit.
    AsyncId
);
id_type!(
    /// Identifier of an action.
    ActionId
);

/// One input of a combinational gate, with optional negation (this is how
/// `not` is represented; no dedicated NOT nets are needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanin {
    /// The driving net.
    pub net: NetId,
    /// Whether the value is inverted.
    pub negated: bool,
}

impl Fanin {
    /// Positive fanin.
    pub fn pos(net: NetId) -> Fanin {
        Fanin {
            net,
            negated: false,
        }
    }
    /// Negated fanin.
    pub fn neg(net: NetId) -> Fanin {
        Fanin { net, negated: true }
    }
}

/// The defining equation of a net.
#[derive(Debug, Clone, PartialEq)]
pub enum NetKind {
    /// Disjunction of the fanins. An `Or` with no fanins is constant 0.
    Or,
    /// Conjunction of the fanins. An `And` with no fanins is constant 1.
    And,
    /// Set by the environment before each reaction (input signals, async
    /// notification wires).
    Input,
    /// A constant.
    Const(bool),
    /// Output of a register (unit delay): holds the value computed for the
    /// register input net at the previous reaction.
    RegOut(RegId),
    /// A data test: when the single control fanin is 1, the expression is
    /// evaluated (after the net's data dependencies resolve) and its
    /// truthiness is the net value; when the control is 0 the net is 0.
    Test(TestKind),
}

/// What a test net evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum TestKind {
    /// A boolean host expression.
    Expr(Expr),
    /// A counted-delay check: when the control fires, evaluate `cond`; if
    /// true, decrement the counter; the net is 1 when the counter reaches
    /// zero (paper: `await count(attempts, sig.now)`).
    CounterElapsed {
        /// The counter to decrement.
        counter: CounterId,
        /// The occurrence condition.
        cond: Expr,
    },
}

/// A side effect attached to a net, run when the net stabilizes to 1 and
/// its data dependencies have resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Emit a signal, optionally computing a value.
    Emit {
        /// Target signal.
        signal: SignalId,
        /// Emitted value (None for pure emissions).
        value: Option<Expr>,
    },
    /// Execute a `hop { ... }` atom.
    Atom(AtomBody),
    /// (Re)initialize a delay counter.
    CounterReset {
        /// The counter.
        counter: CounterId,
        /// The new count.
        value: Expr,
    },
    /// Start an async instance (runs its spawn hook).
    AsyncSpawn(AsyncId),
    /// Kill an async instance (runs its kill hook).
    AsyncKill(AsyncId),
    /// Suspend notification for an async instance.
    AsyncSuspend(AsyncId),
    /// Resume notification for an async instance.
    AsyncResume(AsyncId),
    /// Async completion: emit the completion signal with the notified
    /// value and clear the instance.
    AsyncDone(AsyncId),
}

/// A net with its equation, augmentation and debug metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// The defining equation.
    pub kind: NetKind,
    /// Gate inputs (combinational kinds) or the single control (tests).
    pub fanins: Vec<Fanin>,
    /// Attached side effect.
    pub action: Option<ActionId>,
    /// Data dependencies: nets that must *resolve* (value known and action
    /// done) before this net's test/action may run.
    pub deps: Vec<NetId>,
    /// Debug label (e.g. `abort.elapsed`, `emit connState`).
    pub label: &'static str,
    /// Source location of the originating statement.
    pub loc: Loc,
    /// Signal whose scheduling this net participates in, for diagnostics.
    pub sig_hint: Option<SignalId>,
}

/// A unit-delay register (paper §5.1 "register equation").
#[derive(Debug, Clone, PartialEq)]
pub struct Register {
    /// Net computing the next value during the reaction.
    pub input: NetId,
    /// The `RegOut` net exposing the current value.
    pub output: NetId,
    /// Value before the first reaction.
    pub init: bool,
    /// Debug label.
    pub label: &'static str,
}

/// A compiled signal instance.
#[derive(Debug, Clone)]
pub struct SignalInfo {
    /// The (linked, unique) signal name.
    pub name: String,
    /// Interface direction (`Local` for program-internal signals).
    pub direction: Direction,
    /// Initial value.
    pub init: Option<Value>,
    /// Combine function for simultaneous emissions.
    pub combine: Option<Combine>,
    /// The status net (1 iff the signal is present this instant).
    pub status_net: NetId,
    /// Register output holding the previous instant's status (`S.pre`).
    pub pre_net: NetId,
    /// Environment injection net for `in`/`inout` signals.
    pub input_net: Option<NetId>,
    /// All nets whose action may emit this signal; readers of the signal's
    /// value depend on every one of them.
    pub emitters: Vec<NetId>,
}

/// A compiled delay counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterInfo {
    /// Debug label.
    pub label: &'static str,
}

/// A compiled `async` statement instance.
#[derive(Debug, Clone)]
pub struct AsyncInfo {
    /// Hooks and completion signal (resolved to [`SignalId`] in `signal`).
    pub spec: AsyncSpec,
    /// Completion signal if any.
    pub signal: Option<SignalId>,
    /// Input net pulsed by the runtime when the host activity notifies.
    pub notify_net: NetId,
    /// Debug label.
    pub label: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_constructors() {
        let f = Fanin::pos(NetId(3));
        assert!(!f.negated);
        let g = Fanin::neg(NetId(3));
        assert!(g.negated);
        assert_eq!(f.net, g.net);
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(NetId(7).to_string(), "NetId(7)");
        assert_eq!(RegId(2).index(), 2);
    }
}
