//! Compile-time constructiveness analysis.
//!
//! The paper defers causality errors (`X = not X`) to the runtime
//! fixpoint; Esterel's own toolchain shows most of them can be decided
//! statically. This module condenses the combinational graph (gate
//! fanins plus data dependencies — registers break cycles by
//! construction) into its strongly connected components, then runs a
//! bounded ternary-symbolic fixpoint per nontrivial SCC to classify it:
//!
//! * [`Verdict::Constructive`] — the SCC stabilizes under *every*
//!   assignment of its free bits (external fanin sources and host-data
//!   tests), so it can never cause a causality error;
//! * [`Verdict::NonConstructive`] — some net of the SCC stays ⊥ under
//!   every assignment (or under every boot-instant assignment), so every
//!   reaction is guaranteed to deadlock and the program can be rejected
//!   before it ever runs;
//! * [`Verdict::InputDependent`] — undecided within budget; the runtime
//!   keeps the constructive iteration and reports failures dynamically.
//!
//! The gate evaluation used here is Kleene's strong ternary logic, the
//! same least-fixpoint semantics the constructive engine implements, but
//! *ignoring* data-dependency edges and action micro-scheduling — an
//! over-approximation of determinability. A net the symbolic fixpoint
//! leaves ⊥ therefore stays ⊥ at runtime too, which makes the
//! `NonConstructive` verdict sound; the `Constructive` verdict
//! additionally requires that the SCC has no internal dependency edges
//! (boolean convergence says nothing about action resolution order).

use crate::circuit::Circuit;
use crate::net::{NetId, NetKind};
use std::collections::HashMap;

/// SCC condensation of a circuit's combinational graph, from
/// [`Circuit::condensation`]. Component ids are a topological
/// *evaluation* order: every fanin or dependency of a net lives in a
/// component with an id ≤ its consumer's (equal exactly when both sit on
/// the same cycle).
#[derive(Debug, Clone, Default)]
pub struct Condensation {
    /// Component id of each net, indexed by net id.
    comp_of: Vec<u32>,
    /// CSR offsets into `members` (length = component count + 1).
    comp_start: Vec<u32>,
    /// Every net exactly once, grouped by component in component order
    /// (ascending net id within a component). Because component ids are
    /// topological, this doubles as a valid evaluation order.
    members: Vec<NetId>,
    /// Ids of the nontrivial components (more than one net, or a single
    /// net with a self-edge), ascending.
    nontrivial: Vec<u32>,
}

impl Condensation {
    /// Number of components.
    pub fn comps(&self) -> usize {
        self.comp_start.len().saturating_sub(1)
    }

    /// Component id of a net.
    pub fn comp_of(&self, id: NetId) -> u32 {
        self.comp_of[id.index()]
    }

    /// Members of one component, ascending net ids.
    pub fn members(&self, comp: u32) -> &[NetId] {
        let s = self.comp_start[comp as usize] as usize;
        let e = self.comp_start[comp as usize + 1] as usize;
        &self.members[s..e]
    }

    /// Ids of the nontrivial (cyclic) components, ascending — which is
    /// also their topological order.
    pub fn nontrivial(&self) -> &[u32] {
        &self.nontrivial
    }

    /// Whether a component is cyclic.
    pub fn is_nontrivial(&self, comp: u32) -> bool {
        self.nontrivial.binary_search(&comp).is_ok()
    }

    /// Every net exactly once in a topological evaluation order
    /// (component by component; cyclic components appear as contiguous
    /// runs).
    pub fn topo_order(&self) -> &[NetId] {
        &self.members
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        (0..self.comps())
            .map(|c| self.members(c as u32).len())
            .max()
            .unwrap_or(0)
    }
}

/// Outcome of the per-SCC constructiveness classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Stabilizes under every free-bit assignment; never deadlocks.
    Constructive,
    /// Deadlocks under every assignment (or every boot assignment);
    /// rejected at machine construction.
    NonConstructive,
    /// Undecided within the analysis budget; iterated at runtime.
    InputDependent,
}

impl Verdict {
    /// Lower-case name used by the CLI and lint framework.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Constructive => "constructive",
            Verdict::NonConstructive => "non-constructive",
            Verdict::InputDependent => "input-dependent",
        }
    }
}

/// One nontrivial SCC with its verdict.
#[derive(Debug, Clone)]
pub struct SccVerdict {
    /// Component id in the [`Condensation`].
    pub comp: u32,
    /// Classification of the component.
    pub verdict: Verdict,
}

/// Full analysis result: the condensation plus one verdict per
/// nontrivial SCC (aligned with [`Condensation::nontrivial`]).
#[derive(Debug, Clone, Default)]
pub struct ConstructivenessAnalysis {
    /// The SCC condensation the verdicts refer to.
    pub condensation: Condensation,
    /// Verdicts of the nontrivial components, in topological order.
    pub verdicts: Vec<SccVerdict>,
}

impl ConstructivenessAnalysis {
    /// Members of the first provably non-constructive SCC, if any.
    pub fn first_non_constructive(&self) -> Option<&[NetId]> {
        self.verdicts
            .iter()
            .find(|s| s.verdict == Verdict::NonConstructive)
            .map(|s| self.condensation.members(s.comp))
    }

    /// How many nontrivial SCCs carry `verdict`.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.verdicts.iter().filter(|s| s.verdict == verdict).count()
    }

    /// Number of nontrivial (cyclic) SCCs.
    pub fn cyclic_sccs(&self) -> usize {
        self.verdicts.len()
    }

    /// Size of the largest SCC (1 when the circuit is acyclic).
    pub fn largest_scc(&self) -> usize {
        self.condensation.largest()
    }
}

// Analysis budgets: free-bit enumeration is exponential, so both checks
// cap the bit count, the net count, and the total number of net
// evaluations; anything larger is reported `InputDependent` and left to
// the runtime.
const LOCAL_MAX_BITS: u32 = 12;
const LOCAL_MAX_NETS: usize = 512;
const CONE_MAX_BITS: u32 = 10;
const CONE_MAX_NETS: usize = 2048;
const WORK_BUDGET: u64 = 1 << 22;

impl Circuit {
    /// Computes the SCC condensation of the combinational graph (fanin
    /// edges plus data dependencies). Works on unfinalized circuits.
    pub fn condensation(&self) -> Condensation {
        let n = self.nets().len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut comp_of = vec![0u32; n];
        let mut comps: Vec<Vec<NetId>> = Vec::new();

        // Iterative Tarjan (mirrors `static_cycles`); components pop in
        // reverse topological order of the consumer→producer edges, i.e.
        // producers first — exactly the evaluation order we want.
        struct Frame {
            v: usize,
            edge: usize,
        }
        let succ = |v: usize| -> Vec<usize> {
            let net = &self.nets()[v];
            let mut s: Vec<usize> = net.fanins.iter().map(|f| f.net.index()).collect();
            s.extend(net.deps.iter().map(|d| d.index()));
            s
        };
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames = vec![Frame { v: start, edge: 0 }];
            index[start] = next;
            low[start] = next;
            next += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(fr) = frames.last_mut() {
                let v = fr.v;
                let succs = succ(v);
                if fr.edge < succs.len() {
                    let w = succs[fr.edge];
                    fr.edge += 1;
                    if index[w] == usize::MAX {
                        index[w] = next;
                        low[w] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push(Frame { v: w, edge: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let comp_id = comps.len() as u32;
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp_of[w] = comp_id;
                            comp.push(NetId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        comps.push(comp);
                    }
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let pv = parent.v;
                        low[pv] = low[pv].min(low[v]);
                    }
                }
            }
        }

        let mut comp_start = Vec::with_capacity(comps.len() + 1);
        let mut members = Vec::with_capacity(n);
        let mut nontrivial = Vec::new();
        comp_start.push(0u32);
        for (k, comp) in comps.iter().enumerate() {
            let cyclic = comp.len() > 1
                || succ(comp[0].index()).contains(&comp[0].index());
            if cyclic {
                nontrivial.push(k as u32);
            }
            members.extend_from_slice(comp);
            comp_start.push(members.len() as u32);
        }
        Condensation {
            comp_of,
            comp_start,
            members,
            nontrivial,
        }
    }

    /// Runs the full constructiveness analysis: condensation plus a
    /// bounded ternary-symbolic fixpoint per nontrivial SCC.
    pub fn constructiveness(&self) -> ConstructivenessAnalysis {
        let condensation = self.condensation();
        let verdicts = condensation
            .nontrivial()
            .iter()
            .map(|&comp| SccVerdict {
                comp,
                verdict: self.classify_scc(&condensation, comp),
            })
            .collect();
        ConstructivenessAnalysis {
            condensation,
            verdicts,
        }
    }

    fn classify_scc(&self, cond: &Condensation, comp: u32) -> Verdict {
        let members = cond.members(comp);
        match self.local_check(cond, comp, members) {
            Some(LocalOutcome::AllStuck) => return Verdict::NonConstructive,
            Some(LocalOutcome::AllConverge) => {
                // Boolean convergence alone does not rule out a
                // resolution deadlock through internal dependency edges
                // (e.g. `emit S(S.nowval)`), so those stay undecided.
                let internal_dep = members.iter().any(|&m| {
                    self.net(m)
                        .deps
                        .iter()
                        .any(|d| cond.comp_of(*d) == comp)
                });
                if !internal_dep {
                    return Verdict::Constructive;
                }
            }
            Some(LocalOutcome::Mixed) | None => {}
        }
        // Mixed or over budget: check whether the SCC is stuck under
        // every *boot-instant* assignment (registers at their init
        // values). Registers only commit after a successful reaction, so
        // a machine stuck at boot is stuck forever.
        match self.boot_cone_check(members) {
            Some(true) => Verdict::NonConstructive,
            _ => Verdict::InputDependent,
        }
    }

    /// Enumerates every assignment of the SCC's free bits (deduplicated
    /// external fanin sources, plus the host-data outcome of member test
    /// nets) and runs the Kleene fixpoint restricted to the SCC.
    fn local_check(
        &self,
        cond: &Condensation,
        comp: u32,
        members: &[NetId],
    ) -> Option<LocalOutcome> {
        if members.len() > LOCAL_MAX_NETS {
            return None;
        }
        let lidx: HashMap<NetId, usize> = members
            .iter()
            .enumerate()
            .map(|(k, &m)| (m, k))
            .collect();
        // Free bits: external sources feeding the SCC (constants keep
        // their concrete value instead), then one bit per member that is
        // not a plain gate (test nets — host data — and, defensively,
        // any hand-built source caught in a dep cycle).
        let mut ext: Vec<NetId> = Vec::new();
        let mut member_bit: Vec<Option<usize>> = vec![None; members.len()];
        for (k, &m) in members.iter().enumerate() {
            for f in &self.net(m).fanins {
                if cond.comp_of(f.net) != comp
                    && !matches!(self.net(f.net).kind, NetKind::Const(_))
                    && !ext.contains(&f.net)
                {
                    ext.push(f.net);
                }
            }
            if !matches!(self.net(m).kind, NetKind::Or | NetKind::And) {
                member_bit[k] = Some(0); // patched below
            }
        }
        let mut bits = ext.len();
        for b in member_bit.iter_mut().filter(|b| b.is_some()) {
            *b = Some(bits);
            bits += 1;
        }
        if bits as u32 > LOCAL_MAX_BITS {
            return None;
        }
        let ext_bit: HashMap<NetId, usize> =
            ext.iter().enumerate().map(|(k, &e)| (e, k)).collect();

        let mut work = 0u64;
        let mut any_converged = false;
        let mut any_stuck = false;
        let mut vals = vec![-1i8; members.len()];
        for assignment in 0u64..(1u64 << bits) {
            vals.fill(-1);
            let bit = |b: usize| (assignment >> b) & 1 == 1;
            loop {
                let mut changed = false;
                for (k, &m) in members.iter().enumerate() {
                    if vals[k] >= 0 {
                        continue;
                    }
                    work += 1;
                    if work > WORK_BUDGET {
                        return None;
                    }
                    let net = self.net(m);
                    let read = |src: NetId, negated: bool| -> i8 {
                        let v = match lidx.get(&src) {
                            Some(&j) => vals[j],
                            None => match self.net(src).kind {
                                NetKind::Const(c) => c as i8,
                                _ => bit(ext_bit[&src]) as i8,
                            },
                        };
                        if v < 0 {
                            v
                        } else {
                            (v == 1) as i8 ^ negated as i8
                        }
                    };
                    let v = match &net.kind {
                        NetKind::Or | NetKind::And => {
                            let controlling = matches!(net.kind, NetKind::Or);
                            kleene_fold(
                                net.fanins.iter().map(|f| read(f.net, f.negated)),
                                controlling,
                            )
                        }
                        // A non-gate member: its outcome is a free bit,
                        // gated by the control fanin for tests.
                        _ => match net.fanins.first() {
                            Some(f) => match read(f.net, f.negated) {
                                -1 => -1,
                                0 => 0,
                                _ => bit(member_bit[k].expect("bit assigned")) as i8,
                            },
                            None => bit(member_bit[k].expect("bit assigned")) as i8,
                        },
                    };
                    if v >= 0 {
                        vals[k] = v;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if vals.iter().any(|&v| v < 0) {
                any_stuck = true;
            } else {
                any_converged = true;
            }
            if any_stuck && any_converged {
                return Some(LocalOutcome::Mixed);
            }
        }
        Some(if any_stuck {
            LocalOutcome::AllStuck
        } else {
            LocalOutcome::AllConverge
        })
    }

    /// Evaluates the transitive fanin cone of the SCC at the boot
    /// instant: registers at their init values, inputs and test
    /// outcomes free. Returns `Some(true)` when some member stays ⊥
    /// under *every* assignment — i.e. the very first reaction (and,
    /// since failed reactions never commit registers, every later one)
    /// is guaranteed to deadlock.
    fn boot_cone_check(&self, members: &[NetId]) -> Option<bool> {
        // Transitive fanin closure (boolean stuckness only flows through
        // fanins, not dependency edges).
        let mut in_cone = vec![false; self.nets().len()];
        let mut cone: Vec<NetId> = Vec::new();
        for &m in members {
            in_cone[m.index()] = true;
            cone.push(m);
        }
        let mut head = 0;
        while head < cone.len() {
            let v = cone[head];
            head += 1;
            if cone.len() > CONE_MAX_NETS {
                return None;
            }
            for f in &self.net(v).fanins {
                if !in_cone[f.net.index()] {
                    in_cone[f.net.index()] = true;
                    cone.push(f.net);
                }
            }
        }
        // Free bits: environment inputs and host-data test outcomes.
        let mut bit_of: HashMap<NetId, usize> = HashMap::new();
        for &v in &cone {
            if matches!(self.net(v).kind, NetKind::Input | NetKind::Test(_)) {
                let b = bit_of.len();
                bit_of.insert(v, b);
            }
        }
        if bit_of.len() as u32 > CONE_MAX_BITS {
            return None;
        }
        let cidx: HashMap<NetId, usize> =
            cone.iter().enumerate().map(|(k, &v)| (v, k)).collect();

        let mut work = 0u64;
        let mut vals = vec![-1i8; cone.len()];
        for assignment in 0u64..(1u64 << bit_of.len()) {
            vals.fill(-1);
            let bit = |v: &NetId| (assignment >> bit_of[v]) & 1 == 1;
            loop {
                let mut changed = false;
                for (k, &v) in cone.iter().enumerate() {
                    if vals[k] >= 0 {
                        continue;
                    }
                    work += 1;
                    if work > WORK_BUDGET {
                        return None;
                    }
                    let net = self.net(v);
                    let read = |src: NetId, negated: bool| -> i8 {
                        let val = vals[cidx[&src]];
                        if val < 0 {
                            val
                        } else {
                            (val == 1) as i8 ^ negated as i8
                        }
                    };
                    let value = match &net.kind {
                        NetKind::Const(c) => *c as i8,
                        NetKind::Input => bit(&v) as i8,
                        NetKind::RegOut(r) => self.registers()[r.index()].init as i8,
                        NetKind::Test(_) => match net.fanins.first() {
                            Some(f) => match read(f.net, f.negated) {
                                -1 => -1,
                                0 => 0,
                                _ => bit(&v) as i8,
                            },
                            None => bit(&v) as i8,
                        },
                        NetKind::Or | NetKind::And => {
                            let controlling = matches!(net.kind, NetKind::Or);
                            kleene_fold(
                                net.fanins.iter().map(|f| read(f.net, f.negated)),
                                controlling,
                            )
                        }
                    };
                    if value >= 0 {
                        vals[k] = value;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Members occupy the first positions of `cone`.
            if members.iter().all(|m| vals[cidx[m]] >= 0) {
                return Some(false); // This assignment converges.
            }
        }
        Some(true)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalOutcome {
    AllConverge,
    AllStuck,
    Mixed,
}

/// Kleene strong ternary gate fold: any controlling input decides the
/// gate; otherwise ⊥ inputs keep it ⊥; otherwise it is the neutral
/// value. Inputs are -1 (⊥), 0, 1 *after* edge polarity.
fn kleene_fold(inputs: impl Iterator<Item = i8>, controlling: bool) -> i8 {
    let c = controlling as i8;
    let mut all_known = true;
    for v in inputs {
        if v < 0 {
            all_known = false;
        } else if v == c {
            return c;
        }
    }
    if all_known {
        1 - c
    } else {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Fanin;
    use hiphop_core::rng::Rng;

    #[test]
    fn condensation_self_loop() {
        let mut c = Circuit::new("self");
        let x = c.or(vec![], "x");
        c.add_fanin(x, Fanin::neg(x));
        let y = c.and(vec![Fanin::pos(x)], "y");
        let cond = c.condensation();
        assert_eq!(cond.comps(), 2);
        assert_eq!(cond.nontrivial().len(), 1);
        let cyc = cond.nontrivial()[0];
        assert_eq!(cond.members(cyc), &[x]);
        assert!(cond.is_nontrivial(cyc));
        assert!(!cond.is_nontrivial(cond.comp_of(y)));
        // Producer before consumer.
        assert!(cond.comp_of(x) < cond.comp_of(y));
    }

    #[test]
    fn condensation_two_net_cycle() {
        let mut c = Circuit::new("pair");
        let a = c.or(vec![], "a");
        let b = c.or(vec![Fanin::pos(a)], "b");
        c.add_fanin(a, Fanin::pos(b));
        let bystander = c.and(vec![Fanin::pos(b)], "c");
        let cond = c.condensation();
        assert_eq!(cond.comps(), 2);
        assert_eq!(cond.members(cond.nontrivial()[0]), &[a, b]);
        assert!(cond.comp_of(a) < cond.comp_of(bystander));
    }

    #[test]
    fn condensation_nested_sccs() {
        // Two separate cycles chained by a one-way edge stay separate
        // components, ordered producer-first.
        let mut c = Circuit::new("nested");
        let a = c.or(vec![], "a");
        let b = c.or(vec![Fanin::pos(a)], "b");
        c.add_fanin(a, Fanin::pos(b));
        let p = c.or(vec![Fanin::pos(b)], "p");
        let q = c.or(vec![Fanin::pos(p)], "q");
        c.add_fanin(p, Fanin::pos(q));
        let cond = c.condensation();
        assert_eq!(cond.nontrivial().len(), 2);
        let first = cond.nontrivial()[0];
        let second = cond.nontrivial()[1];
        assert_eq!(cond.members(first), &[a, b]);
        assert_eq!(cond.members(second), &[p, q]);
        assert!(first < second, "the feeding cycle comes first");
    }

    #[test]
    fn condensation_dep_edge_only_cycle() {
        let mut c = Circuit::new("deps");
        let a = c.or(vec![], "a");
        let b = c.or(vec![], "b");
        c.add_dep(a, b);
        c.add_dep(b, a);
        let cond = c.condensation();
        assert_eq!(cond.nontrivial().len(), 1);
        assert_eq!(cond.members(cond.nontrivial()[0]), &[a, b]);
        // static_cycles agrees (it is now a view over the condensation).
        assert_eq!(c.static_cycles(), vec![vec![a, b]]);
    }

    #[test]
    fn condensation_is_a_dag_covering_every_net() {
        // Seeded random circuits: every net appears in exactly one
        // component, and every edge points from a component id ≤ the
        // consumer's (equal only inside a cycle).
        let mut rng = Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..50 {
            let n = 2 + (rng.next_u64() % 40) as usize;
            let mut c = Circuit::new("rand");
            for i in 0..n {
                if rng.next_u64().is_multiple_of(4) {
                    c.input("in");
                } else if rng.next_u64().is_multiple_of(2) {
                    c.or(vec![], "or");
                } else {
                    c.and(vec![], "and");
                }
                let _ = i;
            }
            for i in 0..n {
                if matches!(c.net(NetId(i as u32)).kind, NetKind::Input) {
                    continue;
                }
                let fanins = rng.next_u64() % 4;
                for _ in 0..fanins {
                    let src = NetId((rng.next_u64() % n as u64) as u32);
                    let neg = rng.next_u64().is_multiple_of(2);
                    c.add_fanin(
                        NetId(i as u32),
                        if neg { Fanin::neg(src) } else { Fanin::pos(src) },
                    );
                }
                if rng.next_u64().is_multiple_of(8) {
                    let on = NetId((rng.next_u64() % n as u64) as u32);
                    c.add_dep(NetId(i as u32), on);
                }
            }
            let cond = c.condensation();
            // Coverage: every net in exactly one component.
            let mut seen = vec![0u32; n];
            for comp in 0..cond.comps() as u32 {
                for &m in cond.members(comp) {
                    assert_eq!(cond.comp_of(m), comp);
                    seen[m.index()] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "every net exactly once");
            assert_eq!(cond.topo_order().len(), n);
            // DAG: edges never point to a later component.
            for i in 0..n {
                let v = NetId(i as u32);
                let vc = cond.comp_of(v);
                for f in &c.net(v).fanins {
                    assert!(cond.comp_of(f.net) <= vc, "fanin respects topo order");
                }
                for d in &c.net(v).deps {
                    assert!(cond.comp_of(*d) <= vc, "dep respects topo order");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Verdict fixtures.

    /// `X = not X` guarded by a boot register: `x = or(emit)`,
    /// `emit = and(go, !x)`, `go = boot register (init true)`.
    #[test]
    fn paradox_is_non_constructive_via_the_boot_cone() {
        let mut c = Circuit::new("paradox");
        let (_, go) = c.register(true, "boot");
        let x = c.or(vec![], "x");
        let emit = c.and(vec![Fanin::pos(go), Fanin::neg(x)], "emit");
        c.add_fanin(x, Fanin::pos(emit));
        let a = c.constructiveness();
        assert_eq!(a.verdicts.len(), 1);
        // go=0 converges (everything 0), so the local all-assignments
        // check alone is Mixed; the boot cone pins go=1 and finds the
        // cycle stuck under every assignment.
        assert_eq!(a.verdicts[0].verdict, Verdict::NonConstructive);
        assert_eq!(a.first_non_constructive(), Some([x, emit].as_slice()));
    }

    /// `X = X` (self-justification) is equally non-constructive: the
    /// status stays ⊥ forever.
    #[test]
    fn self_justification_is_non_constructive() {
        let mut c = Circuit::new("xx");
        let (_, go) = c.register(true, "boot");
        let x = c.or(vec![], "x");
        let emit = c.and(vec![Fanin::pos(go), Fanin::pos(x)], "emit");
        c.add_fanin(x, Fanin::pos(emit));
        let a = c.constructiveness();
        assert_eq!(a.verdicts[0].verdict, Verdict::NonConstructive);
    }

    /// `x = or(y, !y); y = and(x, i)`: converges when `i=0`, deadlocks
    /// when `i=1` — genuinely input-dependent.
    #[test]
    fn cyclic_but_input_gated_is_input_dependent() {
        let mut c = Circuit::new("gated");
        let i = c.input("i");
        let x = c.or(vec![], "x");
        let y = c.and(vec![Fanin::pos(x), Fanin::pos(i)], "y");
        c.add_fanin(x, Fanin::pos(y));
        c.add_fanin(x, Fanin::neg(y));
        let a = c.constructiveness();
        assert_eq!(a.verdicts[0].verdict, Verdict::InputDependent);
        assert_eq!(a.count(Verdict::InputDependent), 1);
        assert!(a.first_non_constructive().is_none());
    }

    /// A cycle dominated by a constant-1 OR input stabilizes under every
    /// assignment: provably constructive.
    #[test]
    fn constant_controlled_cycle_is_constructive() {
        let mut c = Circuit::new("const");
        let one = c.constant(true, "1");
        let i = c.input("i");
        let x = c.or(vec![Fanin::pos(one)], "x");
        let y = c.and(vec![Fanin::pos(x), Fanin::pos(i)], "y");
        c.add_fanin(x, Fanin::pos(y));
        let a = c.constructiveness();
        assert_eq!(a.verdicts[0].verdict, Verdict::Constructive);
        assert_eq!(a.largest_scc(), 2);
        assert_eq!(a.cyclic_sccs(), 1);
    }

    /// An internal dependency edge blocks the `Constructive` verdict
    /// even when the boolean fixpoint always converges: resolution can
    /// still deadlock.
    #[test]
    fn internal_dep_edge_blocks_the_constructive_verdict() {
        let mut c = Circuit::new("dep");
        let a = c.or(vec![], "a");
        let b = c.or(vec![], "b");
        c.add_dep(a, b);
        c.add_dep(b, a);
        let an = c.constructiveness();
        assert_eq!(an.verdicts[0].verdict, Verdict::InputDependent);
    }

    #[test]
    fn acyclic_circuits_have_no_verdicts() {
        let mut c = Circuit::new("acyclic");
        let a = c.input("a");
        let _ = c.or(vec![Fanin::pos(a)], "b");
        let an = c.constructiveness();
        assert!(an.verdicts.is_empty());
        assert_eq!(an.cyclic_sccs(), 0);
        assert_eq!(an.largest_scc(), 1);
    }
}
