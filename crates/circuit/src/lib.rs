//! Augmented boolean circuits — the compilation target of HipHop programs
//! (paper §5.1).
//!
//! A circuit is "a list of equations between nets": combinational gates
//! (with negated fanins standing for `not`), unit-delay registers, and
//! *augmented* nets carrying host data expressions ([`net::TestKind`]) or
//! side effects ([`net::Action`]), linked by explicit data-dependency
//! edges that drive the runtime's micro-scheduling.
//!
//! # Examples
//!
//! ```
//! use hiphop_circuit::{Circuit, Fanin};
//!
//! let mut c = Circuit::new("demo");
//! let a = c.input("a");
//! let b = c.input("b");
//! let o = c.or(vec![Fanin::pos(a), Fanin::neg(b)], "a_or_not_b");
//! c.finalize();
//! assert_eq!(c.fanouts(a), &[(o, false)]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod circuit;
pub mod dataflow;
pub mod net;

pub use analysis::{Condensation, ConstructivenessAnalysis, SccVerdict, Verdict};
pub use dataflow::{CircuitFacts, ConstFacts, EmitCapability, Transfer, ValueSet};
pub use circuit::{Circuit, CircuitStats, Levelization};
pub use net::{
    Action, ActionId, AsyncId, AsyncInfo, CounterId, CounterInfo, Fanin, Net, NetId, NetKind,
    RegId, Register, SignalId, SignalInfo, TestKind,
};
