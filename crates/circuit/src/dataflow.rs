//! Inter-instant dataflow: abstract interpretation over circuits.
//!
//! The per-instant constructiveness analysis ([`crate::analysis`]) asks
//! "can this cycle stabilize *within one reaction*?". This module asks
//! the complementary cross-instant questions: which values can a net
//! ever take in *any reachable instant*, which emissions can ever be
//! observed through *any future instant*, and which cycles are held
//! together by data dependencies alone.
//!
//! The machinery is a classic abstract interpretation:
//!
//! - a generic SCC-aware forward fixpoint engine ([`fixpoint`]) over a
//!   pluggable [`Transfer`] function, iterating components of the
//!   [`Condensation`] in producer-first order with bounded widening
//!   inside cyclic components;
//! - a ternary value-set lattice ([`ValueSet`]: ⊥ ⊑ {0},{1} ⊑ ⊤) whose
//!   transfer mirrors Kleene evaluation of the gates;
//! - an outer loop over *instants* that accumulates, per register, the
//!   set of values it can hold at the start of any reachable instant
//!   (seeded from the reset values, widened to ⊤ after a bounded number
//!   of sweeps).
//!
//! Everything here works on both unfinalized and finalized circuits: the
//! transfer functions pull facts through `net.fanins`/`net.deps`
//! directly and never touch the CSR fanout tables, so the optimizer can
//! consume facts *before* `finalize` while lints and the CLI consume
//! them after.
//!
//! # Soundness
//!
//! The concrete semantics evaluated per instant is the constructive
//! (ternary) fixpoint: a net's value is derived monotonically from
//! constants, environment inputs, register outputs and already-derived
//! fanins. Every abstract transfer over-approximates the corresponding
//! concrete derivation step (inputs are ⊤; a register output is the
//! accumulated set of values the register can hold; test outcomes are ⊤
//! whenever the control can fire), and the outer register loop only
//! ever grows the per-register sets starting from the exact reset
//! values — so by induction over (instant, derivation step), every
//! concretely reachable value is contained in the final abstract fact.
//! Widening jumps straight to ⊤ and is therefore trivially sound.

use crate::analysis::Condensation;
use crate::circuit::Circuit;
use crate::net::{Action, NetId, NetKind, TestKind};
use hiphop_core::expr::SigAccess;
use hiphop_core::signal::Direction;
use std::collections::VecDeque;

/// Iteration budget inside one cyclic component before widening to ⊤.
/// The per-net lattice has height 2, so `2·|members| + 2` chaotic rounds
/// always converge; the cap only matters for pathological components.
const SCC_ROUND_CAP: usize = 64;

/// Cyclic components larger than this widen to ⊤ immediately.
const SCC_SIZE_CAP: usize = 4096;

/// Outer instant-sweep budget before all register sets widen to ⊤. Each
/// register set can grow at most twice (⊥ → singleton → ⊤), so chains
/// longer than this are astronomically unlikely in real circuits.
const OUTER_SWEEP_CAP: usize = 48;

// ---------------------------------------------------------------------
// The value-set lattice.

/// The set of boolean values a net can take, as a two-bit mask:
/// bit 0 = "can be 0", bit 1 = "can be 1". The lattice is ordered by
/// set inclusion: [`ValueSet::BOTTOM`] (unreachable / not yet derived)
/// below the two singletons below [`ValueSet::TOP`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValueSet(u8);

impl ValueSet {
    /// The empty set: no value derivable (unreached code, or a cycle
    /// that never stabilizes).
    pub const BOTTOM: ValueSet = ValueSet(0);
    /// Provably 0 in every reachable instant.
    pub const ZERO: ValueSet = ValueSet(1);
    /// Provably 1 in every reachable instant.
    pub const ONE: ValueSet = ValueSet(2);
    /// Both values possible.
    pub const TOP: ValueSet = ValueSet(3);

    /// The singleton set `{v}`.
    pub fn of(v: bool) -> ValueSet {
        if v {
            ValueSet::ONE
        } else {
            ValueSet::ZERO
        }
    }

    /// `true` when `v` is in the set.
    pub fn can(self, v: bool) -> bool {
        self.0 & (1 << u8::from(v)) != 0
    }

    /// Set union (the lattice join).
    #[must_use]
    pub fn join(self, other: ValueSet) -> ValueSet {
        ValueSet(self.0 | other.0)
    }

    /// `Some(v)` when the set is exactly `{v}`.
    pub fn singleton(self) -> Option<bool> {
        match self {
            ValueSet::ZERO => Some(false),
            ValueSet::ONE => Some(true),
            _ => None,
        }
    }

    /// `true` for the empty set.
    pub fn is_bottom(self) -> bool {
        self.0 == 0
    }

    /// The set of negations (swaps the two bits).
    #[must_use]
    pub fn negate(self) -> ValueSet {
        ValueSet(((self.0 & 1) << 1) | ((self.0 & 2) >> 1))
    }
}

/// Kleene OR over fanin value sets: the result can be 1 as soon as any
/// fanin can, and can be 0 only once every fanin can. The empty OR is
/// the constant 0, matching [`NetKind::Or`]'s concrete semantics.
fn or_fold(inputs: impl Iterator<Item = ValueSet>) -> ValueSet {
    let mut one = 0u8;
    let mut zero = 1u8;
    for v in inputs {
        one |= v.0 >> 1;
        zero &= v.0 & 1;
    }
    ValueSet((one << 1) | zero)
}

/// Kleene AND over fanin value sets (dual of [`or_fold`]; empty = 1).
fn and_fold(inputs: impl Iterator<Item = ValueSet>) -> ValueSet {
    let mut zero = 0u8;
    let mut one = 1u8;
    for v in inputs {
        zero |= v.0 & 1;
        one &= v.0 >> 1;
    }
    ValueSet((one << 1) | zero)
}

// ---------------------------------------------------------------------
// The generic engine.

/// A forward transfer function driving [`fixpoint`]. Implementations
/// must be monotone in the fact lattice for the engine's producer-first
/// iteration order (and its widening fallback) to be sound.
pub trait Transfer {
    /// The per-net fact.
    type Fact: Clone + PartialEq;

    /// The least fact, seeding iteration inside cyclic components.
    fn bottom(&self) -> Self::Fact;

    /// A sound upper bound of every reachable fact, used to widen a
    /// cyclic component that exhausts its iteration budget.
    fn top(&self) -> Self::Fact;

    /// Recomputes the fact for `net` from the current facts of its
    /// fanins (`facts` is indexed by net id).
    fn transfer(&self, circuit: &Circuit, net: NetId, facts: &[Self::Fact]) -> Self::Fact;
}

/// Runs `t` to a fixpoint over the circuit: components of `cond` in
/// producer-first order, one transfer per net in acyclic regions,
/// bounded chaotic iteration (with widening to [`Transfer::top`]) inside
/// cyclic components. Works on unfinalized circuits — only
/// `net.fanins`/`net.deps` are read, never the CSR fanout tables.
pub fn fixpoint<T: Transfer>(circuit: &Circuit, cond: &Condensation, t: &T) -> Vec<T::Fact> {
    let n = circuit.nets().len();
    let mut facts = vec![t.bottom(); n];
    // Components in producer-first order: first appearance along the
    // net-level topological order.
    let mut emitted = vec![false; cond.comps()];
    for &id in cond.topo_order() {
        let comp = cond.comp_of(id);
        if emitted[comp as usize] {
            continue;
        }
        emitted[comp as usize] = true;
        if !cond.is_nontrivial(comp) {
            facts[id.index()] = t.transfer(circuit, id, &facts);
            continue;
        }
        let members = cond.members(comp);
        let rounds = (2 * members.len() + 2).min(SCC_ROUND_CAP);
        let mut converged = false;
        if members.len() <= SCC_SIZE_CAP {
            for _ in 0..rounds {
                let mut changed = false;
                for &m in members {
                    let new = t.transfer(circuit, m, &facts);
                    if new != facts[m.index()] {
                        facts[m.index()] = new;
                        changed = true;
                    }
                }
                if !changed {
                    converged = true;
                    break;
                }
            }
        }
        if !converged {
            for &m in members {
                facts[m.index()] = t.top();
            }
        }
    }
    facts
}

// ---------------------------------------------------------------------
// Analysis 1: register-aware ternary constant / reachability propagation.

/// Per-instant value-set transfer with the register state abstracted by
/// `regs` (the set of values each register can hold at instant start).
struct ConstTransfer<'a> {
    regs: &'a [ValueSet],
}

impl Transfer for ConstTransfer<'_> {
    type Fact = ValueSet;

    fn bottom(&self) -> ValueSet {
        ValueSet::BOTTOM
    }

    fn top(&self) -> ValueSet {
        ValueSet::TOP
    }

    fn transfer(&self, circuit: &Circuit, net: NetId, facts: &[ValueSet]) -> ValueSet {
        let net = &circuit.nets()[net.index()];
        let fanin = |f: &crate::net::Fanin| {
            let v = facts[f.net.index()];
            if f.negated {
                v.negate()
            } else {
                v
            }
        };
        match net.kind {
            NetKind::Const(v) => ValueSet::of(v),
            // Environment inputs and async notify wires: the host picks.
            NetKind::Input => ValueSet::TOP,
            NetKind::RegOut(r) => self.regs[r.index()],
            // A test fires its expression only when the control is 1;
            // the outcome is then host data we cannot see.
            NetKind::Test(_) => {
                let control = and_fold(net.fanins.iter().map(fanin));
                if control.is_bottom() {
                    ValueSet::BOTTOM
                } else if control.can(true) {
                    ValueSet::TOP
                } else {
                    ValueSet::ZERO
                }
            }
            NetKind::Or => or_fold(net.fanins.iter().map(fanin)),
            NetKind::And => and_fold(net.fanins.iter().map(fanin)),
        }
    }
}

/// The inter-instant constant facts: per-net and per-register value
/// sets accumulated over every reachable instant.
#[derive(Debug, Clone)]
pub struct ConstFacts {
    /// Per net: every value the net can take in any reachable instant.
    pub values: Vec<ValueSet>,
    /// Per register: every value it can hold at the start of an instant
    /// (including its reset value).
    pub registers: Vec<ValueSet>,
    /// `true` when the outer sweep hit its budget and the register sets
    /// were widened to ⊤ (the facts are still sound, just coarser).
    pub widened: bool,
}

/// Runs the register-aware constant/reachability propagation: instant
/// sweeps (each a [`fixpoint`] with registers abstracted by their
/// accumulated value sets) until the register sets stabilize, widening
/// to ⊤ after [`OUTER_SWEEP_CAP`] sweeps.
pub fn constants(circuit: &Circuit) -> ConstFacts {
    let cond = circuit.condensation();
    constants_with(circuit, &cond)
}

/// [`constants`] reusing an existing condensation.
pub fn constants_with(circuit: &Circuit, cond: &Condensation) -> ConstFacts {
    let mut regs: Vec<ValueSet> = circuit
        .registers()
        .iter()
        .map(|r| ValueSet::of(r.init))
        .collect();
    let mut values = vec![ValueSet::BOTTOM; circuit.nets().len()];
    let mut widened = false;
    let mut sweeps = 0usize;
    loop {
        let sweep = fixpoint(circuit, cond, &ConstTransfer { regs: &regs });
        for (acc, v) in values.iter_mut().zip(&sweep) {
            *acc = acc.join(*v);
        }
        // Jacobi update: registers latch their input when the instant
        // completes; ⊥ inputs (unreached) contribute nothing.
        let mut changed = false;
        for (k, r) in circuit.registers().iter().enumerate() {
            let next = regs[k].join(sweep[r.input.index()]);
            if next != regs[k] {
                regs[k] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        sweeps += 1;
        if sweeps >= OUTER_SWEEP_CAP {
            // Widen every register to ⊤ and take one final sweep so the
            // net facts absorb the widened state.
            widened = true;
            regs.fill(ValueSet::TOP);
            let last = fixpoint(circuit, cond, &ConstTransfer { regs: &regs });
            for (acc, v) in values.iter_mut().zip(&last) {
                *acc = acc.join(*v);
            }
            break;
        }
    }
    ConstFacts {
        values,
        registers: regs,
        widened,
    }
}

// ---------------------------------------------------------------------
// Analysis 2: observability (inter-instant liveness of emissions).

/// The signal names (paired with the access kind) read dynamically by
/// the expressions attached to `net` — test conditions, emitted values,
/// atom bodies, counter resets. These reads consume signal nets *by
/// name* at runtime without structural fanin edges, so the observability
/// walk must treat them as edges.
fn expr_reads(circuit: &Circuit, net: &crate::net::Net) -> Vec<(String, SigAccess)> {
    let mut reads = Vec::new();
    if let NetKind::Test(kind) = &net.kind {
        match kind {
            TestKind::Expr(e) => reads.extend(e.signal_reads()),
            TestKind::CounterElapsed { cond, .. } => reads.extend(cond.signal_reads()),
        }
    }
    if let Some(a) = net.action {
        match &circuit.actions()[a.index()] {
            Action::Emit { value: Some(e), .. } => reads.extend(e.signal_reads()),
            Action::Emit { value: None, .. } => {}
            Action::Atom(body) => reads.extend(body.signal_reads()),
            Action::CounterReset { value, .. } => reads.extend(value.signal_reads()),
            Action::AsyncSpawn(_)
            | Action::AsyncKill(_)
            | Action::AsyncSuspend(_)
            | Action::AsyncResume(_)
            | Action::AsyncDone(_) => {}
        }
    }
    reads
}

/// Computes, per net, whether it can influence anything the environment
/// observes — in this instant or any future one. The walk is a reverse
/// reachability from externally-visible sinks (non-local signal wiring,
/// host-effect actions, counter state, async wires, boot/terminated)
/// through fanins, dependency edges, register unit delays and dynamic
/// by-name expression reads; an emission to a *local* signal is visible
/// only once the signal's own nets are (computed as part of the same
/// fixpoint, since status nets list their emitters as fanins).
pub fn observability(circuit: &Circuit) -> Vec<bool> {
    let n = circuit.nets().len();
    let mut observable = vec![false; n];
    let mut queue: VecDeque<NetId> = VecDeque::new();
    let mark = |id: NetId, observable: &mut Vec<bool>, queue: &mut VecDeque<NetId>| {
        if !observable[id.index()] {
            observable[id.index()] = true;
            queue.push_back(id);
        }
    };
    for (i, net) in circuit.nets().iter().enumerate() {
        let id = NetId(i as u32);
        // Counter tests mutate counter state when they evaluate.
        if matches!(net.kind, NetKind::Test(TestKind::CounterElapsed { .. })) {
            mark(id, &mut observable, &mut queue);
        }
        if let Some(a) = net.action {
            let visible = match &circuit.actions()[a.index()] {
                // Host effects and async lifecycle hooks are visible
                // regardless of what reads them.
                Action::Atom(_)
                | Action::CounterReset { .. }
                | Action::AsyncSpawn(_)
                | Action::AsyncKill(_)
                | Action::AsyncSuspend(_)
                | Action::AsyncResume(_)
                | Action::AsyncDone(_) => true,
                // An emission is visible iff the target signal is part
                // of the interface; local emissions become visible only
                // through readers (handled by the walk).
                Action::Emit { signal, .. } => {
                    circuit.signal(*signal).direction != Direction::Local
                }
            };
            if visible {
                mark(id, &mut observable, &mut queue);
            }
        }
    }
    for s in circuit.signals() {
        if s.direction == Direction::Local {
            continue;
        }
        mark(s.status_net, &mut observable, &mut queue);
        mark(s.pre_net, &mut observable, &mut queue);
        if let Some(i) = s.input_net {
            mark(i, &mut observable, &mut queue);
        }
    }
    for a in circuit.asyncs() {
        mark(a.notify_net, &mut observable, &mut queue);
    }
    if let Some(b) = circuit.boot_net {
        mark(b, &mut observable, &mut queue);
    }
    if let Some(t) = circuit.terminated_net {
        mark(t, &mut observable, &mut queue);
    }
    while let Some(id) = queue.pop_front() {
        let net = &circuit.nets()[id.index()];
        for f in &net.fanins {
            mark(f.net, &mut observable, &mut queue);
        }
        for &d in &net.deps {
            mark(d, &mut observable, &mut queue);
        }
        if let NetKind::RegOut(r) = net.kind {
            mark(
                circuit.registers()[r.index()].input,
                &mut observable,
                &mut queue,
            );
        }
        for (name, access) in expr_reads(circuit, net) {
            if let Some(sig) = circuit.signal_by_name(&name) {
                let info = circuit.signal(sig);
                let read_net = match access {
                    SigAccess::Now | SigAccess::NowVal => info.status_net,
                    SigAccess::Pre | SigAccess::PreVal => info.pre_net,
                };
                mark(read_net, &mut observable, &mut queue);
                // A value read consumes what the emitters wrote.
                for &e in &info.emitters {
                    mark(e, &mut observable, &mut queue);
                }
            }
        }
    }
    observable
}

// ---------------------------------------------------------------------
// Analyses 3 & 4: emit capability, loops, schizophrenia.

/// May/must-emit capability of one signal, derived from the constant
/// facts of its status net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitCapability {
    /// The signal can be present in at least one reachable instant.
    pub may: bool,
    /// The signal is present in *every* reachable instant.
    pub must: bool,
}

/// The complete fact bundle the lints, the optimizer and the CLI
/// consume, computed by [`analyze`].
#[derive(Debug, Clone)]
pub struct CircuitFacts {
    /// Inter-instant value sets per net.
    pub values: Vec<ValueSet>,
    /// Inter-instant value sets per register.
    pub registers: Vec<ValueSet>,
    /// `true` when the constant propagation hit its widening budget.
    pub widened: bool,
    /// Per net: can it influence anything externally observable, in
    /// this instant or any future one?
    pub observable: Vec<bool>,
    /// Cyclic SCCs held together purely by data-dependency edges (no
    /// boolean fanin closes the cycle): if all members activate in one
    /// instant, value resolution deadlocks.
    pub dep_only_sccs: Vec<Vec<NetId>>,
    /// Local signals duplicated by loop reincarnation: the base source
    /// name paired with the number of circuit-level instances.
    pub schizophrenic: Vec<(String, usize)>,
}

impl CircuitFacts {
    /// `Some(v)` when `id` provably evaluates to `v` in every reachable
    /// instant.
    pub fn constant(&self, id: NetId) -> Option<bool> {
        self.values[id.index()].singleton()
    }

    /// May/must-emit capability of a signal from its status net's facts.
    pub fn emit_capability(&self, circuit: &Circuit, sig: crate::net::SignalId) -> EmitCapability {
        let v = self.values[circuit.signal(sig).status_net.index()];
        EmitCapability {
            may: v.can(true),
            must: v == ValueSet::ONE,
        }
    }

    /// Number of non-trivial nets (not already `Const`) with a singleton
    /// value set.
    pub fn constant_nets(&self, circuit: &Circuit) -> usize {
        self.values
            .iter()
            .enumerate()
            .filter(|(i, v)| {
                v.singleton().is_some()
                    && !matches!(circuit.nets()[*i].kind, NetKind::Const(_))
            })
            .count()
    }

    /// Number of registers pinned to a single value across all instants.
    pub fn pinned_registers(&self) -> usize {
        self.registers.iter().filter(|v| v.singleton().is_some()).count()
    }

    /// Number of nets that can never influence anything observable.
    pub fn unobservable_nets(&self) -> usize {
        self.observable.iter().filter(|o| !**o).count()
    }
}

/// Detects cyclic SCCs whose internal connectivity is data-dependency
/// edges only — no boolean fanin closes the cycle, so the cycle is an
/// instantaneous *resolution* loop (e.g. `emit S(S.nowval)`), invisible
/// to the boolean constructiveness analysis.
fn dep_only_sccs(circuit: &Circuit, cond: &Condensation) -> Vec<Vec<NetId>> {
    let mut out = Vec::new();
    for &comp in cond.nontrivial() {
        let members = cond.members(comp);
        let internal_fanin = members.iter().any(|&m| {
            circuit.nets()[m.index()]
                .fanins
                .iter()
                .any(|f| cond.comp_of(f.net) == comp)
        });
        if !internal_fanin {
            out.push(members.to_vec());
        }
    }
    out
}

/// Groups local signals by their base source name (the part before the
/// translator's `@instance` suffix) and reports every name with two or
/// more circuit-level instances — the signature of reincarnation
/// (schizophrenia) duplication.
fn schizophrenic_locals(circuit: &Circuit) -> Vec<(String, usize)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<&str, usize> = BTreeMap::new();
    for s in circuit.signals() {
        if s.direction != Direction::Local {
            continue;
        }
        let base = s.name.split('@').next().unwrap_or(&s.name);
        *groups.entry(base).or_insert(0) += 1;
    }
    groups
        .into_iter()
        .filter(|&(_, n)| n > 1)
        .map(|(name, n)| (name.to_owned(), n))
        .collect()
}

/// Runs every analysis and bundles the facts. Works on finalized and
/// unfinalized circuits alike.
pub fn analyze(circuit: &Circuit) -> CircuitFacts {
    let cond = circuit.condensation();
    let consts = constants_with(circuit, &cond);
    CircuitFacts {
        values: consts.values,
        registers: consts.registers,
        widened: consts.widened,
        observable: observability(circuit),
        dep_only_sccs: dep_only_sccs(circuit, &cond),
        schizophrenic: schizophrenic_locals(circuit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Fanin, SignalInfo};

    fn signal(c: &mut Circuit, name: &str, dir: Direction) -> (crate::net::SignalId, NetId, NetId) {
        let status = c.or(vec![], "sig.status");
        let (pre_reg, pre) = c.register(false, "sig.pre");
        c.set_register_input(pre_reg, status);
        let id = c.add_signal(SignalInfo {
            name: name.into(),
            direction: dir,
            init: None,
            combine: None,
            status_net: status,
            pre_net: pre,
            input_net: None,
            emitters: vec![],
        });
        (id, status, pre)
    }

    #[test]
    fn value_set_lattice_operations() {
        assert_eq!(ValueSet::ZERO.join(ValueSet::ONE), ValueSet::TOP);
        assert_eq!(ValueSet::BOTTOM.join(ValueSet::ONE), ValueSet::ONE);
        assert_eq!(ValueSet::ZERO.negate(), ValueSet::ONE);
        assert_eq!(ValueSet::TOP.negate(), ValueSet::TOP);
        assert_eq!(ValueSet::BOTTOM.negate(), ValueSet::BOTTOM);
        assert_eq!(ValueSet::ONE.singleton(), Some(true));
        assert_eq!(ValueSet::TOP.singleton(), None);
        assert!(ValueSet::TOP.can(false) && ValueSet::TOP.can(true));
    }

    #[test]
    fn kleene_folds_match_gate_semantics() {
        // or() = {0}, and() = {1}.
        assert_eq!(or_fold(std::iter::empty()), ValueSet::ZERO);
        assert_eq!(and_fold(std::iter::empty()), ValueSet::ONE);
        // An OR with one fanin that can be 1 can be 1 even while another
        // fanin is still ⊥ (Kleene short-circuit).
        assert_eq!(
            or_fold([ValueSet::ONE, ValueSet::BOTTOM].into_iter()),
            ValueSet::ONE
        );
        // ...but it cannot be 0 until every fanin can.
        assert_eq!(
            or_fold([ValueSet::ZERO, ValueSet::BOTTOM].into_iter()),
            ValueSet::BOTTOM
        );
        assert_eq!(
            and_fold([ValueSet::ZERO, ValueSet::BOTTOM].into_iter()),
            ValueSet::ZERO
        );
    }

    #[test]
    fn acyclic_constant_propagation() {
        let mut c = Circuit::new("t");
        let c0 = c.constant(false, "c0");
        let c1 = c.constant(true, "c1");
        let i = c.input("i");
        // g = i & 1 can be anything; h = i & 0 is provably 0.
        let g = c.and(vec![Fanin::pos(i), Fanin::pos(c1)], "g");
        let h = c.and(vec![Fanin::pos(i), Fanin::pos(c0)], "h");
        let facts = constants(&c);
        assert_eq!(facts.values[g.index()], ValueSet::TOP);
        assert_eq!(facts.values[h.index()].singleton(), Some(false));
        assert!(!facts.widened);
    }

    #[test]
    fn register_cycle_pins_to_reset_value() {
        // Two registers feeding each other, both reset to 0, no other
        // source: provably 0 forever. Per-instant folding cannot see
        // this (neither output is syntactically constant).
        let mut c = Circuit::new("t");
        let (r1, out1) = c.register(false, "r1");
        let (r2, out2) = c.register(false, "r2");
        let buf1 = c.or(vec![Fanin::pos(out2)], "buf1");
        let buf2 = c.or(vec![Fanin::pos(out1)], "buf2");
        c.set_register_input(r1, buf1);
        c.set_register_input(r2, buf2);
        let facts = constants(&c);
        assert_eq!(facts.values[out1.index()].singleton(), Some(false));
        assert_eq!(facts.values[out2.index()].singleton(), Some(false));
        assert_eq!(facts.registers[0].singleton(), Some(false));
    }

    #[test]
    fn register_reached_by_input_widens_to_top() {
        let mut c = Circuit::new("t");
        let i = c.input("i");
        let (r, out) = c.register(false, "r");
        let next = c.or(vec![Fanin::pos(i), Fanin::pos(out)], "next");
        c.set_register_input(r, next);
        let facts = constants(&c);
        assert_eq!(facts.values[out.index()], ValueSet::TOP);
        assert_eq!(facts.registers[0], ValueSet::TOP);
        assert!(!facts.widened, "2-value lattice must converge without widening");
    }

    #[test]
    fn boot_style_register_accumulates_both_values() {
        // init 1, input const 0: {1} at boot, {0} forever after.
        let mut c = Circuit::new("t");
        let c0 = c.constant(false, "c0");
        let (r, out) = c.register(true, "boot");
        c.set_register_input(r, c0);
        let facts = constants(&c);
        assert_eq!(facts.registers[0], ValueSet::TOP);
        assert_eq!(facts.values[out.index()], ValueSet::TOP);
    }

    #[test]
    fn cyclic_scc_converges_from_bottom() {
        // x = or(x, go) with go an input. Constructively x can be
        // derived to 1 (go=1) but never to 0: deriving 0 would need the
        // self-fanin already known 0. The Kleene fixpoint captures
        // exactly that — {1}, not ⊤.
        let mut c = Circuit::new("t");
        let go = c.input("go");
        let x = c.or(vec![Fanin::pos(go)], "x");
        c.add_fanin(x, Fanin::pos(x));
        let facts = constants(&c);
        assert_eq!(facts.values[x.index()], ValueSet::ONE);
    }

    #[test]
    fn paradox_cycle_stays_bottom() {
        // x = not x with no external justification: no value is ever
        // constructively derivable, so the fact stays ⊥.
        let mut c = Circuit::new("t");
        let x = c.or(vec![], "x");
        c.add_fanin(x, Fanin::neg(x));
        let facts = constants(&c);
        assert!(facts.values[x.index()].is_bottom());
    }

    #[test]
    fn observability_sees_through_registers() {
        // in -> gate -> reg -> out_status: the gate is observable only
        // through the register's unit delay.
        let mut c = Circuit::new("t");
        let i = c.input("i");
        let gate = c.or(vec![Fanin::pos(i)], "gate");
        let (r, out) = c.register(false, "r");
        c.set_register_input(r, gate);
        let (_sig, status, _pre) = signal(&mut c, "O", Direction::Out);
        c.add_fanin(status, Fanin::pos(out));
        let obs = observability(&c);
        assert!(obs[gate.index()] && obs[i.index()] && obs[out.index()]);
    }

    #[test]
    fn unobservable_local_reader_chain_is_dark() {
        // A local signal read by a gate that feeds nothing the
        // environment can see: the whole cluster is unobservable.
        let mut c = Circuit::new("t");
        let (_s, status, _pre) = signal(&mut c, "L@1", Direction::Local);
        let emit = c.or(vec![], "emit");
        c.add_fanin(status, Fanin::pos(emit));
        let reader = c.and(vec![Fanin::pos(status)], "reader");
        let obs = observability(&c);
        assert!(!obs[status.index()]);
        assert!(!obs[reader.index()]);
        // The same chain feeding an output status becomes observable.
        let (_o, ostatus, _opre) = signal(&mut c, "O", Direction::Out);
        c.add_fanin(ostatus, Fanin::pos(reader));
        let obs = observability(&c);
        assert!(obs[status.index()] && obs[reader.index()] && obs[emit.index()]);
    }

    #[test]
    fn dep_only_cycle_is_detected() {
        let mut c = Circuit::new("t");
        let a = c.or(vec![], "a");
        let b = c.or(vec![], "b");
        c.add_dep(a, b);
        c.add_dep(b, a);
        let facts = analyze(&c);
        assert_eq!(facts.dep_only_sccs.len(), 1);
        assert_eq!(facts.dep_only_sccs[0].len(), 2);
        // A boolean cycle is NOT dep-only.
        let mut c2 = Circuit::new("t2");
        let x = c2.or(vec![], "x");
        let y = c2.or(vec![Fanin::pos(x)], "y");
        c2.add_fanin(x, Fanin::pos(y));
        let facts2 = analyze(&c2);
        assert!(facts2.dep_only_sccs.is_empty());
    }

    #[test]
    fn schizophrenic_locals_group_by_base_name() {
        let mut c = Circuit::new("t");
        signal(&mut c, "s%1@4", Direction::Local);
        signal(&mut c, "s%1@9", Direction::Local);
        signal(&mut c, "t%2@11", Direction::Local);
        signal(&mut c, "O", Direction::Out);
        let facts = analyze(&c);
        assert_eq!(facts.schizophrenic, vec![("s%1".to_owned(), 2)]);
    }

    #[test]
    fn facts_summaries_count_consistently(){
        let mut c = Circuit::new("t");
        let c0 = c.constant(false, "c0");
        let i = c.input("i");
        let dead = c.and(vec![Fanin::pos(i), Fanin::pos(c0)], "dead");
        let (_sig, status, _pre) = signal(&mut c, "O", Direction::Out);
        c.add_fanin(status, Fanin::pos(dead));
        let facts = analyze(&c);
        // `dead` is a non-Const net with a singleton fact; c0 itself is
        // excluded from the count.
        assert_eq!(facts.constant_nets(&c), facts.values.iter().enumerate()
            .filter(|(k, v)| v.singleton().is_some()
                && !matches!(c.nets()[*k].kind, NetKind::Const(_)))
            .count());
        assert!(facts.constant_nets(&c) >= 1);
        assert_eq!(facts.constant(dead), Some(false));
    }
}
