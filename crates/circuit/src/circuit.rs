//! The circuit container: nets, registers, signals, counters, asyncs,
//! plus construction helpers, validation, statistics, and static cycle
//! analysis.

use crate::net::{
    Action, ActionId, AsyncId, AsyncInfo, CounterId, CounterInfo, Fanin, Net, NetId, NetKind,
    RegId, Register, SignalId, SignalInfo, TestKind,
};
use hiphop_core::ast::Loc;
use std::collections::HashMap;
use std::fmt;

/// An augmented boolean circuit (paper §5.1) ready for simulation.
///
/// Built by `hiphop-compiler`; executed by `hiphop-runtime`. The structure
/// is append-only during construction and sealed by [`Circuit::finalize`],
/// which computes fanouts and dependency fanouts for the linear-time
/// simulation (paper §5.2: "execution is linear in the number of net
/// connections and data dependencies").
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Program name.
    pub name: String,
    nets: Vec<Net>,
    registers: Vec<Register>,
    signals: Vec<SignalInfo>,
    counters: Vec<CounterInfo>,
    asyncs: Vec<AsyncInfo>,
    actions: Vec<Action>,
    by_name: HashMap<String, SignalId>,
    /// Net that is 1 exactly at the first reaction (the "boot" wire).
    pub boot_net: Option<NetId>,
    /// Root completion net: 1 when the whole program terminates.
    pub terminated_net: Option<NetId>,
    /// Flattened fanout edges with the consuming edge's polarity, grouped
    /// by source net (compressed sparse rows, computed by
    /// [`Circuit::finalize`]). `fanout_start[i]..fanout_start[i+1]` slices
    /// the edges of net `i`.
    fanout_edges: Vec<(NetId, bool)>,
    fanout_start: Vec<u32>,
    /// Flattened dependency fanouts (which nets wait on me), same layout.
    dep_fanout_edges: Vec<NetId>,
    dep_fanout_start: Vec<u32>,
    finalized: bool,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Circuit {
        Circuit {
            name: name.into(),
            ..Circuit::default()
        }
    }

    fn push_net(&mut self, net: Net) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(net);
        id
    }

    /// Adds an OR gate over `fanins`.
    pub fn or(&mut self, fanins: Vec<Fanin>, label: &'static str) -> NetId {
        self.push_net(Net {
            kind: NetKind::Or,
            fanins,
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        })
    }

    /// Adds an AND gate over `fanins`.
    pub fn and(&mut self, fanins: Vec<Fanin>, label: &'static str) -> NetId {
        self.push_net(Net {
            kind: NetKind::And,
            fanins,
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        })
    }

    /// Adds a constant net.
    pub fn constant(&mut self, v: bool, label: &'static str) -> NetId {
        self.push_net(Net {
            kind: NetKind::Const(v),
            fanins: Vec::new(),
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        })
    }

    /// Adds an environment input net.
    pub fn input(&mut self, label: &'static str) -> NetId {
        self.push_net(Net {
            kind: NetKind::Input,
            fanins: Vec::new(),
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        })
    }

    /// Adds a test net controlled by `control`.
    pub fn test(&mut self, control: NetId, kind: TestKind, label: &'static str) -> NetId {
        self.push_net(Net {
            kind: NetKind::Test(kind),
            fanins: vec![Fanin::pos(control)],
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        })
    }

    /// Adds a register; returns `(reg, output_net)`. The input net is set
    /// later with [`Circuit::set_register_input`] (bodies are translated
    /// before their surrounding control wires exist).
    pub fn register(&mut self, init: bool, label: &'static str) -> (RegId, NetId) {
        let reg = RegId(self.registers.len() as u32);
        let out = self.push_net(Net {
            kind: NetKind::RegOut(reg),
            fanins: Vec::new(),
            action: None,
            deps: Vec::new(),
            label,
            loc: Loc::synthetic(),
            sig_hint: None,
        });
        self.registers.push(Register {
            input: out, // placeholder, replaced by set_register_input
            output: out,
            init,
            label,
        });
        (reg, out)
    }

    /// Connects a register's input equation.
    pub fn set_register_input(&mut self, reg: RegId, input: NetId) {
        self.registers[reg.index()].input = input;
    }

    /// Appends a fanin to an existing gate (used to OR contributions into
    /// signal status nets and register inputs incrementally).
    pub fn add_fanin(&mut self, net: NetId, fanin: Fanin) {
        debug_assert!(matches!(
            self.nets[net.index()].kind,
            NetKind::Or | NetKind::And
        ));
        self.nets[net.index()].fanins.push(fanin);
    }

    /// Attaches an action to a net.
    pub fn attach_action(&mut self, net: NetId, action: Action) -> ActionId {
        let id = ActionId(self.actions.len() as u32);
        self.actions.push(action);
        assert!(
            self.nets[net.index()].action.is_none(),
            "net {net} already has an action"
        );
        self.nets[net.index()].action = Some(id);
        id
    }

    /// Adds a data dependency: `net` must wait for `on` to resolve. A
    /// self-dependency is kept: it makes the net unresolvable, which the
    /// runtime reports as a causality error (e.g. `emit S(S.nowval)`).
    pub fn add_dep(&mut self, net: NetId, on: NetId) {
        if !self.nets[net.index()].deps.contains(&on) {
            self.nets[net.index()].deps.push(on);
        }
    }

    /// Declares a signal instance. The status net must already exist.
    pub fn add_signal(&mut self, info: SignalInfo) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.by_name.insert(info.name.clone(), id);
        self.signals.push(info);
        id
    }

    /// Registers an emitter net for a signal (value-readiness tracking).
    pub fn add_emitter(&mut self, signal: SignalId, net: NetId) {
        self.signals[signal.index()].emitters.push(net);
    }

    /// Declares a delay counter.
    pub fn add_counter(&mut self, label: &'static str) -> CounterId {
        let id = CounterId(self.counters.len() as u32);
        self.counters.push(CounterInfo { label });
        id
    }

    /// Declares an async instance.
    pub fn add_async(&mut self, info: AsyncInfo) -> AsyncId {
        let id = AsyncId(self.asyncs.len() as u32);
        self.asyncs.push(info);
        id
    }

    /// Sets the debug metadata of a net.
    pub fn describe(&mut self, net: NetId, loc: Loc, sig_hint: Option<SignalId>) {
        let n = &mut self.nets[net.index()];
        n.loc = loc;
        n.sig_hint = sig_hint;
    }

    // ------------------------------------------------------------------
    // Accessors.

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }
    /// All registers.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }
    /// All signals.
    pub fn signals(&self) -> &[SignalInfo] {
        &self.signals
    }
    /// All counters.
    pub fn counters(&self) -> &[CounterInfo] {
        &self.counters
    }
    /// All async instances.
    pub fn asyncs(&self) -> &[AsyncInfo] {
        &self.asyncs
    }
    /// All actions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }
    /// A signal by id.
    pub fn signal(&self, id: SignalId) -> &SignalInfo {
        &self.signals[id.index()]
    }
    /// Looks a signal up by (linked) name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }
    /// Fanouts of a net with the consuming edge's polarity (requires
    /// [`Circuit::finalize`]).
    pub fn fanouts(&self, id: NetId) -> &[(NetId, bool)] {
        let s = self.fanout_start[id.index()] as usize;
        let e = self.fanout_start[id.index() + 1] as usize;
        &self.fanout_edges[s..e]
    }
    /// Nets depending on `id` (requires [`Circuit::finalize`]).
    pub fn dep_fanouts(&self, id: NetId) -> &[NetId] {
        let s = self.dep_fanout_start[id.index()] as usize;
        let e = self.dep_fanout_start[id.index() + 1] as usize;
        &self.dep_fanout_edges[s..e]
    }
    /// Whether [`Circuit::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    // ------------------------------------------------------------------
    // Sealing.

    /// Computes fanout and dependency-fanout tables; call once after
    /// construction.
    ///
    /// The tables are compressed sparse rows: one contiguous edge array
    /// per table plus per-net start offsets, so a reaction's fanout walks
    /// touch dense cache-friendly memory instead of a `Vec` per net.
    pub fn finalize(&mut self) {
        let n = self.nets.len();
        let mut fan_count = vec![0u32; n];
        let mut dep_count = vec![0u32; n];
        for net in &self.nets {
            for f in &net.fanins {
                fan_count[f.net.index()] += 1;
            }
            for d in &net.deps {
                dep_count[d.index()] += 1;
            }
        }
        let prefix = |counts: &[u32]| -> Vec<u32> {
            let mut start = Vec::with_capacity(counts.len() + 1);
            let mut acc = 0u32;
            start.push(0);
            for &c in counts {
                acc += c;
                start.push(acc);
            }
            start
        };
        let fanout_start = prefix(&fan_count);
        let dep_fanout_start = prefix(&dep_count);
        let mut fanout_edges = vec![(NetId(0), false); *fanout_start.last().unwrap() as usize];
        let mut dep_fanout_edges = vec![NetId(0); *dep_fanout_start.last().unwrap() as usize];
        // Second pass: scatter edges; cursors start at each row's offset,
        // preserving consumer order within a row.
        let mut fan_cur: Vec<u32> = fanout_start[..n].to_vec();
        let mut dep_cur: Vec<u32> = dep_fanout_start[..n].to_vec();
        for (i, net) in self.nets.iter().enumerate() {
            for f in &net.fanins {
                let c = &mut fan_cur[f.net.index()];
                fanout_edges[*c as usize] = (NetId(i as u32), f.negated);
                *c += 1;
            }
            for d in &net.deps {
                let c = &mut dep_cur[d.index()];
                dep_fanout_edges[*c as usize] = NetId(i as u32);
                *c += 1;
            }
        }
        self.fanout_edges = fanout_edges;
        self.fanout_start = fanout_start;
        self.dep_fanout_edges = dep_fanout_edges;
        self.dep_fanout_start = dep_fanout_start;
        self.finalized = true;
    }

    /// Structural sanity checks; panics on an internally inconsistent
    /// circuit (compiler bug), returns `self` for chaining in tests.
    ///
    /// # Panics
    ///
    /// On dangling net references, tests without exactly one control
    /// fanin, inputs/constants/registers with fanins, or actions referring
    /// to out-of-range entities.
    pub fn validate(&self) {
        let n = self.nets.len() as u32;
        for (i, net) in self.nets.iter().enumerate() {
            for f in &net.fanins {
                assert!(f.net.0 < n, "net {i}: dangling fanin {}", f.net);
            }
            for d in &net.deps {
                assert!(d.0 < n, "net {i}: dangling dep {d}");
            }
            match &net.kind {
                NetKind::Input | NetKind::Const(_) | NetKind::RegOut(_) => {
                    assert!(net.fanins.is_empty(), "net {i} ({:?}) has fanins", net.kind);
                }
                NetKind::Test(_) => {
                    assert_eq!(net.fanins.len(), 1, "test net {i} needs 1 control fanin");
                }
                NetKind::Or | NetKind::And => {}
            }
            if let Some(a) = net.action {
                assert!((a.0 as usize) < self.actions.len(), "net {i}: bad action");
            }
        }
        for (i, r) in self.registers.iter().enumerate() {
            assert!(r.input.0 < n, "register {i}: dangling input");
            assert!(
                matches!(self.nets[r.output.index()].kind, NetKind::RegOut(id) if id.index() == i),
                "register {i}: output net mismatch"
            );
        }
        for s in &self.signals {
            assert!(s.status_net.0 < n);
            assert!(s.pre_net.0 < n);
            for e in &s.emitters {
                assert!(e.0 < n);
            }
        }
    }

    // ------------------------------------------------------------------
    // Rewriting (used by the optimizer; circuit must not be finalized).

    /// Replaces a net's fanins and dependency list.
    pub fn set_net_edges(&mut self, id: NetId, fanins: Vec<Fanin>, deps: Vec<NetId>) {
        assert!(!self.finalized, "cannot rewrite a finalized circuit");
        let n = &mut self.nets[id.index()];
        n.fanins = fanins;
        n.deps = deps;
    }

    /// Redirects every structural net reference (register inputs, signal
    /// nets, emitter lists, async notify wires, boot/terminated) through
    /// `f`.
    pub fn remap_references(&mut self, f: &mut dyn FnMut(NetId) -> NetId) {
        assert!(!self.finalized, "cannot rewrite a finalized circuit");
        for r in &mut self.registers {
            r.input = f(r.input);
            // r.output is a RegOut net, never redirected.
        }
        for s in &mut self.signals {
            s.status_net = f(s.status_net);
            s.pre_net = f(s.pre_net);
            if let Some(i) = &mut s.input_net {
                *i = f(*i);
            }
            for e in &mut s.emitters {
                *e = f(*e);
            }
        }
        for a in &mut self.asyncs {
            a.notify_net = f(a.notify_net);
        }
        if let Some(b) = &mut self.boot_net {
            *b = f(*b);
        }
        if let Some(t) = &mut self.terminated_net {
            *t = f(*t);
        }
    }

    /// Drops nets whose `live` flag is false, compacting net and register
    /// ids and remapping every reference.
    ///
    /// # Panics
    ///
    /// Panics if a live net references a dead one (the caller must mark
    /// transitively).
    pub fn compact_nets(&mut self, live: &[bool]) {
        assert!(!self.finalized, "cannot rewrite a finalized circuit");
        assert_eq!(live.len(), self.nets.len());
        let mut net_map: Vec<Option<NetId>> = vec![None; self.nets.len()];
        let mut next = 0u32;
        for (i, &alive) in live.iter().enumerate() {
            if alive {
                net_map[i] = Some(NetId(next));
                next += 1;
            }
        }
        let remap = |id: NetId| -> NetId {
            net_map[id.index()].unwrap_or_else(|| panic!("live net references dead net {id}"))
        };

        // Registers live iff their output net is live.
        let mut reg_map: Vec<Option<RegId>> = vec![None; self.registers.len()];
        let mut new_regs = Vec::new();
        for (i, r) in self.registers.iter().enumerate() {
            if live[r.output.index()] {
                reg_map[i] = Some(RegId(new_regs.len() as u32));
                new_regs.push(Register {
                    input: remap(r.input),
                    output: remap(r.output),
                    init: r.init,
                    label: r.label,
                });
            }
        }

        let old = std::mem::take(&mut self.nets);
        for (i, mut net) in old.into_iter().enumerate() {
            if !live[i] {
                continue;
            }
            for f in &mut net.fanins {
                f.net = remap(f.net);
            }
            for d in &mut net.deps {
                *d = remap(*d);
            }
            if let NetKind::RegOut(r) = &mut net.kind {
                *r = reg_map[r.index()].expect("live RegOut has live register");
            }
            self.nets.push(net);
        }
        self.registers = new_regs;
        for s in &mut self.signals {
            s.status_net = remap(s.status_net);
            s.pre_net = remap(s.pre_net);
            if let Some(i) = &mut s.input_net {
                *i = remap(*i);
            }
            for e in &mut s.emitters {
                *e = remap(*e);
            }
        }
        for a in &mut self.asyncs {
            a.notify_net = remap(a.notify_net);
        }
        if let Some(b) = &mut self.boot_net {
            *b = remap(*b);
        }
        if let Some(t) = &mut self.terminated_net {
            *t = remap(*t);
        }
    }

    // ------------------------------------------------------------------
    // Analyses.

    /// Strongly connected components of the combinational graph with more
    /// than one net (or a self-loop). These are the *potential* causality
    /// cycles the paper says deserve a compile-time warning; at runtime
    /// they may still evaluate constructively.
    pub fn static_cycles(&self) -> Vec<Vec<NetId>> {
        // A view over the SCC condensation (see `analysis.rs`): the
        // nontrivial components in topological order, members sorted by
        // ascending net id.
        let cond = self.condensation();
        cond.nontrivial()
            .iter()
            .map(|&comp| cond.members(comp).to_vec())
            .collect()
    }

    /// Topological levelization of the combinational graph (fanin edges
    /// plus data dependencies; registers break cycles by construction), or
    /// `None` if the graph has a static cycle — exactly when
    /// [`Circuit::static_cycles`] is non-empty.
    ///
    /// This is the classic Esterel acyclic-circuit strategy: when the
    /// graph levelizes, a reaction can be evaluated by a single dense
    /// sweep in level order with no constructive ⊥-bookkeeping, because
    /// every fanin *and* every data dependency of a net stabilizes at a
    /// strictly lower level.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not finalized (the Kahn pass walks the
    /// fanout tables).
    pub fn levelize(&self) -> Option<Levelization> {
        assert!(self.finalized, "levelize requires a finalized circuit");
        let n = self.nets.len();
        let mut indegree = vec![0u32; n];
        for (i, net) in self.nets.iter().enumerate() {
            indegree[i] = (net.fanins.len() + net.deps.len()) as u32;
        }
        let mut level_of = vec![0u32; n];
        let mut order: Vec<NetId> = Vec::with_capacity(n);
        let mut level_starts = vec![0u32];
        let mut frontier: Vec<NetId> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .map(NetId)
            .collect();
        let mut level = 0u32;
        while !frontier.is_empty() {
            // Canonical within-level order: ascending net id.
            frontier.sort_unstable();
            order.extend_from_slice(&frontier);
            level_starts.push(order.len() as u32);
            let mut next = Vec::new();
            for &v in &frontier {
                let mut relax = |w: NetId| {
                    let d = &mut indegree[w.index()];
                    *d -= 1;
                    if *d == 0 {
                        // The last predecessor of `w` sits on this level,
                        // so `w` belongs to the next one.
                        level_of[w.index()] = level + 1;
                        next.push(w);
                    }
                };
                for &(w, _) in self.fanouts(v) {
                    relax(w);
                }
                for &w in self.dep_fanouts(v) {
                    relax(w);
                }
            }
            frontier = next;
            level += 1;
        }
        if order.len() < n {
            return None; // A combinational cycle kept some nets unready.
        }
        Some(Levelization {
            order,
            level_starts,
            level_of,
        })
    }

    /// Statistics for the paper's §5.3 measurements.
    pub fn stats(&self) -> CircuitStats {
        let fanin_edges = self.nets.iter().map(|x| x.fanins.len()).sum();
        let dep_edges = self.nets.iter().map(|x| x.deps.len()).sum();
        CircuitStats {
            nets: self.nets.len(),
            registers: self.registers.len(),
            signals: self.signals.len(),
            counters: self.counters.len(),
            asyncs: self.asyncs.len(),
            actions: self.actions.len(),
            fanin_edges,
            dep_edges,
            bytes: self.memory_bytes(),
        }
    }

    /// Estimated memory footprint of the circuit structure in bytes
    /// (struct sizes plus owned heap), the analogue of the paper's
    /// "192 to 216 bytes per net" JavaScript accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = size_of::<Circuit>();
        for net in &self.nets {
            total += size_of::<Net>();
            total += net.fanins.capacity() * size_of::<Fanin>();
            total += net.deps.capacity() * size_of::<NetId>();
        }
        total += self.registers.capacity() * size_of::<Register>();
        total += self.actions.capacity() * size_of::<Action>();
        total += self.fanout_edges.capacity() * size_of::<(NetId, bool)>();
        total += self.fanout_start.capacity() * size_of::<u32>();
        total += self.dep_fanout_edges.capacity() * size_of::<NetId>();
        total += self.dep_fanout_start.capacity() * size_of::<u32>();
        for s in &self.signals {
            total += size_of::<SignalInfo>()
                + s.name.capacity()
                + s.emitters.capacity() * size_of::<NetId>();
        }
        total += self.counters.capacity() * size_of::<CounterInfo>();
        total += self.asyncs.capacity() * size_of::<AsyncInfo>();
        total
    }

    /// Graphviz dot rendering for debugging small circuits. Nets caught
    /// in a static cycle are filled with a per-SCC color so the cycles
    /// stand out.
    pub fn to_dot(&self) -> String {
        self.render_dot(None)
    }

    /// Like [`Circuit::to_dot`], but additionally colors nets by their
    /// inter-instant dataflow facts: provably-0 nets fill gray, provably-1
    /// nets fill gold, and unobservable nets get a dashed gray outline.
    /// SCC cycle fills take precedence (a cyclic net keeps its SCC color).
    pub fn to_dot_with_facts(&self, facts: &crate::dataflow::CircuitFacts) -> String {
        self.render_dot(Some(facts))
    }

    fn render_dot(&self, facts: Option<&crate::dataflow::CircuitFacts>) -> String {
        use std::fmt::Write as _;
        const SCC_PALETTE: [&str; 6] = [
            "lightsalmon",
            "lightblue",
            "palegreen",
            "khaki",
            "plum",
            "lightpink",
        ];
        let cond = self.condensation();
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR; node [fontsize=9];");
        for (i, net) in self.nets.iter().enumerate() {
            let shape = match net.kind {
                NetKind::Or => "ellipse",
                NetKind::And => "box",
                NetKind::Input => "invtriangle",
                NetKind::Const(_) => "plaintext",
                NetKind::RegOut(_) => "doublecircle",
                NetKind::Test(_) => "diamond",
            };
            let extra = match net.kind {
                NetKind::Const(v) => format!("={}", v as u8),
                _ => String::new(),
            };
            let act = if net.action.is_some() { "*" } else { "" };
            let comp = cond.comp_of(NetId(i as u32));
            let fill = if cond.is_nontrivial(comp) {
                let scc = cond
                    .nontrivial()
                    .iter()
                    .position(|&c| c == comp)
                    .unwrap_or(0);
                format!(
                    ", style=filled, fillcolor={}",
                    SCC_PALETTE[scc % SCC_PALETTE.len()]
                )
            } else if let Some(facts) = facts {
                let mut attrs = String::new();
                match facts.values[i].singleton() {
                    Some(false) => attrs.push_str(", style=filled, fillcolor=gray85"),
                    Some(true) => attrs.push_str(", style=filled, fillcolor=gold"),
                    None => {}
                }
                if !facts.observable[i] {
                    attrs.push_str(", color=gray50");
                }
                attrs
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  n{i} [label=\"{}{}{}#{i}\", shape={shape}{fill}];",
                net.label, extra, act
            );
            for f in &net.fanins {
                let style = if f.negated { " [arrowhead=odot]" } else { "" };
                let _ = writeln!(s, "  n{} -> n{i}{style};", f.net.index());
            }
            for d in &net.deps {
                let _ = writeln!(s, "  n{} -> n{i} [style=dashed,color=gray];", d.index());
            }
        }
        for r in &self.registers {
            let _ = writeln!(
                s,
                "  n{} -> n{} [style=dotted,label=\"reg\"];",
                r.input.index(),
                r.output.index()
            );
        }
        s.push_str("}\n");
        s
    }
}

/// A topological levelization of an acyclic combinational graph, from
/// [`Circuit::levelize`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Levelization {
    /// Every net exactly once, in topological order, grouped by level
    /// (level 0 first; ascending net id within a level).
    pub order: Vec<NetId>,
    /// Start offset of each level in `order` (length = `levels() + 1`).
    pub level_starts: Vec<u32>,
    /// Topological level of each net, indexed by net id.
    pub level_of: Vec<u32>,
}

impl Levelization {
    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.level_starts.len().saturating_sub(1)
    }
    /// Size of the widest level (the sweep's available parallelism).
    pub fn max_width(&self) -> usize {
        self.level_starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
    /// The nets of one level.
    pub fn level(&self, i: usize) -> &[NetId] {
        &self.order[self.level_starts[i] as usize..self.level_starts[i + 1] as usize]
    }
    /// Per-level population, in level order — the width histogram
    /// behind [`Levelization::max_width`]. The sum equals
    /// `order.len()`.
    pub fn widths(&self) -> Vec<usize> {
        self.level_starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }
}

/// Aggregate circuit statistics (experiments E2/E3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of nets.
    pub nets: usize,
    /// Number of registers.
    pub registers: usize,
    /// Number of signal instances.
    pub signals: usize,
    /// Number of delay counters.
    pub counters: usize,
    /// Number of async instances.
    pub asyncs: usize,
    /// Number of attached actions.
    pub actions: usize,
    /// Total gate-input connections.
    pub fanin_edges: usize,
    /// Total data-dependency edges.
    pub dep_edges: usize,
    /// Estimated structure memory in bytes.
    pub bytes: usize,
}

impl CircuitStats {
    /// Average bytes per net (the paper reports 192–216 B/net for the
    /// JavaScript object representation).
    pub fn bytes_per_net(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.nets as f64
        }
    }
    /// Average connections per net (the paper: "nodes are on average
    /// connected to two other nets").
    pub fn avg_fanin(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.fanin_edges as f64 / self.nets as f64
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nets, {} regs, {} signals, {} edges (+{} deps), {:.1} B/net, {} KB",
            self.nets,
            self.registers,
            self.signals,
            self.fanin_edges,
            self.dep_edges,
            self.bytes_per_net(),
            self.bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_circuit() {
        let mut c = Circuit::new("t");
        let a = c.input("a");
        let b = c.input("b");
        let o = c.or(vec![Fanin::pos(a), Fanin::neg(b)], "o");
        let (reg, out) = c.register(false, "r");
        c.set_register_input(reg, o);
        c.finalize();
        c.validate();
        assert_eq!(c.nets().len(), 4);
        assert_eq!(c.fanouts(a), &[(o, false)]);
        assert_eq!(c.fanouts(b), &[(o, true)]);
        assert!(c.fanouts(out).is_empty());
        assert_eq!(c.registers()[0].input, o);
    }

    #[test]
    fn stats_counts_edges() {
        let mut c = Circuit::new("t");
        let a = c.input("a");
        let b = c.or(vec![Fanin::pos(a)], "b");
        let _ = c.and(vec![Fanin::pos(a), Fanin::pos(b)], "c");
        c.finalize();
        let st = c.stats();
        assert_eq!(st.nets, 3);
        assert_eq!(st.fanin_edges, 3);
        assert!(st.bytes > 0);
        assert!(st.bytes_per_net() > 0.0);
        assert!(st.avg_fanin() > 0.9);
    }

    #[test]
    fn static_cycle_detection_finds_x_not_x() {
        // X = not X: a single OR net with a negated self fanin.
        let mut c = Circuit::new("cycle");
        let x = c.or(vec![], "x");
        c.add_fanin(x, Fanin::neg(x));
        c.finalize();
        let cycles = c.static_cycles();
        assert_eq!(cycles, vec![vec![x]]);
    }

    #[test]
    fn static_cycle_detection_finds_mutual_pair() {
        let mut c = Circuit::new("cycle2");
        let a = c.or(vec![], "a");
        let b = c.or(vec![Fanin::pos(a)], "b");
        c.add_fanin(a, Fanin::pos(b));
        // An acyclic bystander.
        let _ = c.and(vec![Fanin::pos(b)], "c");
        c.finalize();
        let cycles = c.static_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![a, b]);
    }

    #[test]
    fn registers_break_cycles() {
        let mut c = Circuit::new("reg");
        let (reg, out) = c.register(false, "r");
        let next = c.or(vec![Fanin::neg(out)], "next");
        c.set_register_input(reg, next);
        c.finalize();
        assert!(c.static_cycles().is_empty());
    }

    #[test]
    fn dot_output_mentions_nets() {
        let mut c = Circuit::new("d");
        let a = c.input("inA");
        let _ = c.or(vec![Fanin::neg(a)], "gate");
        let dot = c.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("inA"));
        assert!(dot.contains("arrowhead=odot"));
    }

    #[test]
    fn dot_colors_cyclic_nets_by_scc() {
        let mut c = Circuit::new("cyc");
        let x = c.or(vec![], "x");
        c.add_fanin(x, Fanin::neg(x));
        let _ = c.and(vec![Fanin::pos(x)], "sink");
        let dot = c.to_dot();
        assert!(dot.contains("fillcolor=lightsalmon"), "{dot}");
        assert_eq!(dot.matches("style=filled").count(), 1, "only the cycle");

        let mut ac = Circuit::new("acyclic");
        let a = ac.input("a");
        let _ = ac.or(vec![Fanin::pos(a)], "gate");
        assert!(!ac.to_dot().contains("style=filled"));
    }

    #[test]
    fn dot_with_facts_colors_constants_and_unobservable_nets() {
        let mut c = Circuit::new("facts");
        let c0 = c.constant(false, "c0");
        let i = c.input("i");
        // dead = i & 0 is provably 0; nothing here is observable (no
        // signals, actions or boot/terminated wiring).
        let _dead = c.and(vec![Fanin::pos(i), Fanin::pos(c0)], "dead");
        let facts = crate::dataflow::analyze(&c);
        let dot = c.to_dot_with_facts(&facts);
        assert!(dot.contains("fillcolor=gray85"), "{dot}");
        assert!(dot.contains("color=gray50"), "{dot}");
        // The plain rendering is unchanged by the facts feature.
        assert!(!c.to_dot().contains("gray85"));
    }

    #[test]
    fn levelize_orders_a_diamond() {
        let mut c = Circuit::new("diamond");
        let a = c.input("a");
        let l = c.or(vec![Fanin::pos(a)], "l");
        let r = c.and(vec![Fanin::neg(a)], "r");
        let o = c.or(vec![Fanin::pos(l), Fanin::pos(r)], "o");
        c.finalize();
        let lv = c.levelize().expect("acyclic");
        assert_eq!(lv.levels(), 3);
        assert_eq!(lv.level(0), &[a]);
        assert_eq!(lv.level(1), &[l, r]);
        assert_eq!(lv.level(2), &[o]);
        assert_eq!(lv.level_of, vec![0, 1, 1, 2]);
        assert_eq!(lv.max_width(), 2);
        assert_eq!(lv.order.len(), c.nets().len());
    }

    #[test]
    fn levelize_widths_partition_the_order() {
        let mut c = Circuit::new("widths");
        let a = c.input("a");
        let b = c.input("b");
        let l = c.or(vec![Fanin::pos(a)], "l");
        let r = c.and(vec![Fanin::pos(a), Fanin::neg(b)], "r");
        let _o = c.or(vec![Fanin::pos(l), Fanin::pos(r)], "o");
        c.finalize();
        let lv = c.levelize().expect("acyclic");
        assert_eq!(lv.widths(), vec![2, 2, 1]);
        assert_eq!(lv.widths().iter().sum::<usize>(), lv.order.len());
        assert_eq!(lv.widths().iter().copied().max().unwrap(), lv.max_width());
    }

    #[test]
    fn levelize_counts_dep_edges() {
        // b has no fanin from a but depends on it: still level(a) < level(b).
        let mut c = Circuit::new("deps");
        let a = c.input("a");
        let b = c.or(vec![], "b");
        c.add_dep(b, a);
        c.finalize();
        let lv = c.levelize().expect("acyclic");
        assert_eq!(lv.level_of[a.index()], 0);
        assert_eq!(lv.level_of[b.index()], 1);
    }

    #[test]
    fn levelize_rejects_cycles_exactly_when_static_cycles_fire() {
        let mut c = Circuit::new("cycle");
        let x = c.or(vec![], "x");
        c.add_fanin(x, Fanin::neg(x));
        c.finalize();
        assert!(!c.static_cycles().is_empty());
        assert!(c.levelize().is_none());

        let mut c2 = Circuit::new("reg");
        let (reg, out) = c2.register(false, "r");
        let next = c2.or(vec![Fanin::neg(out)], "next");
        c2.set_register_input(reg, next);
        c2.finalize();
        assert!(c2.static_cycles().is_empty());
        assert!(c2.levelize().is_some());
    }

    #[test]
    #[should_panic(expected = "already has an action")]
    fn double_action_panics() {
        let mut c = Circuit::new("a");
        let n = c.or(vec![], "n");
        let sig = SignalId(0);
        c.attach_action(n, Action::Emit { signal: sig, value: None });
        c.attach_action(n, Action::Emit { signal: sig, value: None });
    }
}
