//! Multitier execution: several reactive machines (server and clients)
//! linked by simulated network channels — the Hop.js half of the paper's
//! architecture ("Hop.js helps programming the asynchronous code
//! deployment and communication between servers and clients, while
//! HipHop.js helps programming synchronous patterns *on both sides*",
//! §2.4).
//!
//! A [`Link`] forwards one machine's output signal to another machine's
//! input signal with a configurable latency; the [`Multitier`] driver
//! interleaves timer callbacks and message deliveries in virtual-time
//! order, so distributed scenarios replay deterministically.

use crate::EventLoop;
use hiphop_core::value::Value;
use hiphop_runtime::{Machine, Reaction, RuntimeError};
use std::cell::RefCell;
use std::rc::Rc;

/// Identifier of a tier (a machine) within a [`Multitier`] driver.
pub type TierId = usize;

/// A directed signal channel between two tiers.
#[derive(Debug, Clone)]
pub struct Link {
    from_tier: TierId,
    from: String,
    to_tier: TierId,
    to: String,
    latency_ms: u64,
}

#[derive(Debug)]
struct Message {
    deliver_at: u64,
    seq: u64,
    tier: TierId,
    signal: String,
    value: Value,
}

/// The multitier driver.
pub struct Multitier {
    /// The shared virtual-time event loop.
    pub el: Rc<RefCell<EventLoop>>,
    tiers: Vec<Rc<RefCell<Machine>>>,
    links: Vec<Link>,
    pending: Vec<Message>,
    seq: u64,
}

impl Multitier {
    /// A driver over a fresh event loop.
    pub fn new() -> Multitier {
        Multitier {
            el: Rc::new(RefCell::new(EventLoop::new())),
            tiers: Vec::new(),
            links: Vec::new(),
            pending: Vec::new(),
            seq: 0,
        }
    }

    /// Adds a machine as a tier; returns its id.
    pub fn add_tier(&mut self, machine: Machine) -> TierId {
        self.tiers.push(Rc::new(RefCell::new(machine)));
        self.tiers.len() - 1
    }

    /// Shared handle to a tier's machine.
    pub fn tier(&self, id: TierId) -> Rc<RefCell<Machine>> {
        self.tiers[id].clone()
    }

    /// Declares a channel: whenever `from` is present in a reaction of
    /// `from_tier`, its value is delivered `latency_ms` later as input
    /// `to` of `to_tier`.
    pub fn link(
        &mut self,
        from_tier: TierId,
        from: &str,
        to_tier: TierId,
        to: &str,
        latency_ms: u64,
    ) -> &mut Self {
        self.links.push(Link {
            from_tier,
            from: from.to_owned(),
            to_tier,
            to: to.to_owned(),
            latency_ms,
        });
        self
    }

    fn route(&mut self, tier: TierId, reactions: &[Reaction]) {
        let now = self.el.borrow().now();
        for r in reactions {
            for l in &self.links {
                if l.from_tier == tier && r.present(&l.from) {
                    self.seq += 1;
                    self.pending.push(Message {
                        deliver_at: now + l.latency_ms,
                        seq: self.seq,
                        tier: l.to_tier,
                        signal: l.to.clone(),
                        value: r.value(&l.from),
                    });
                }
            }
        }
    }

    fn react_tier(
        &mut self,
        tier: TierId,
        inputs: &[(&str, Value)],
    ) -> Result<Vec<Reaction>, RuntimeError> {
        let machine = self.tiers[tier].clone();
        let mut reactions = {
            let mut m = machine.borrow_mut();
            let mut out = vec![m.react_with(inputs)?];
            out.extend(m.drain()?);
            out
        };
        self.route(tier, &reactions);
        // Zero-latency deliveries cascade immediately.
        reactions.extend(self.deliver_due()?);
        Ok(reactions)
    }

    /// Reacts on a tier with external inputs (a user action on a client).
    ///
    /// # Errors
    ///
    /// Propagates machine errors from any tier reached by cascading
    /// deliveries.
    pub fn react(
        &mut self,
        tier: TierId,
        inputs: &[(&str, Value)],
    ) -> Result<Vec<Reaction>, RuntimeError> {
        self.react_tier(tier, inputs)
    }

    fn next_due(&self, target: u64) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, m)| m.deliver_at <= target)
            .min_by_key(|(_, m)| (m.deliver_at, m.seq))
            .map(|(i, _)| i)
    }

    fn deliver_due(&mut self) -> Result<Vec<Reaction>, RuntimeError> {
        let mut out = Vec::new();
        let mut guard = 0;
        loop {
            let now = self.el.borrow().now();
            let Some(idx) = self.next_due(now) else { break };
            guard += 1;
            assert!(
                guard < 100_000,
                "zero-latency message loop between tiers"
            );
            let msg = self.pending.swap_remove(idx);
            let rs = self.react_tier(msg.tier, &[(msg.signal.as_str(), msg.value.clone())])?;
            out.extend(rs);
        }
        Ok(out)
    }

    /// Advances virtual time, interleaving timer callbacks and message
    /// deliveries in order.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn advance_by(&mut self, ms: u64) -> Result<Vec<Reaction>, RuntimeError> {
        let target = self.el.borrow().now() + ms;
        let mut reactions = Vec::new();
        loop {
            let now = self.el.borrow().now();
            let t_timer = self.el.borrow().next_deadline().filter(|&d| d <= target);
            let t_msg = self
                .next_due(target)
                .map(|i| self.pending[i].deliver_at.max(now));
            let timer_first = match (t_timer, t_msg) {
                (None, None) => break,
                (Some(tt), Some(tm)) => tt <= tm,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            if timer_first {
                self.el.borrow_mut().step();
                for tier in 0..self.tiers.len() {
                    let machine = self.tiers[tier].clone();
                    let rs = machine.borrow_mut().drain()?;
                    self.route(tier, &rs);
                    reactions.extend(rs);
                }
                reactions.extend(self.deliver_due()?);
            } else {
                // Advance the clock to the delivery time, then deliver.
                let tm = t_msg.expect("message branch");
                let now = self.el.borrow().now();
                if tm > now {
                    self.el.borrow_mut().advance_by(tm - now);
                }
                reactions.extend(self.deliver_due()?);
            }
        }
        let now = self.el.borrow().now();
        if target > now {
            self.el.borrow_mut().advance_by(target - now);
        }
        Ok(reactions)
    }
}

impl Default for Multitier {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Multitier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multitier")
            .field("tiers", &self.tiers.len())
            .field("links", &self.links.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiphop_core::prelude::*;
    use hiphop_runtime::machine_for;

    fn client() -> Machine {
        // Sends `ask` on user click; displays the reply.
        let m = Module::new("Client")
            .input(SignalDecl::new("click", Direction::In))
            .input(SignalDecl::new("reply", Direction::In))
            .output(SignalDecl::new("ask", Direction::Out).with_init(0i64))
            .output(SignalDecl::new("shown", Direction::Out).with_init(""))
            .body(Stmt::par([
                Stmt::every(
                    Delay::cond(Expr::now("click")),
                    Stmt::emit_val("ask", Expr::nowval("click")),
                ),
                Stmt::every(
                    Delay::cond(Expr::now("reply")),
                    Stmt::emit_val("shown", Expr::nowval("reply")),
                ),
            ]));
        machine_for(&m, &ModuleRegistry::new()).expect("client compiles")
    }

    fn server() -> Machine {
        // Doubles each request.
        let m = Module::new("Server")
            .input(SignalDecl::new("req", Direction::In))
            .output(SignalDecl::new("ans", Direction::Out).with_init(0i64))
            .body(Stmt::every(
                Delay::cond(Expr::now("req")),
                Stmt::emit_val("ans", Expr::nowval("req").mul(Expr::num(2.0))),
            ));
        machine_for(&m, &ModuleRegistry::new()).expect("server compiles")
    }

    #[test]
    fn round_trip_with_latency() {
        let mut mt = Multitier::new();
        let c = mt.add_tier(client());
        let s = mt.add_tier(server());
        mt.link(c, "ask", s, "req", 20);
        mt.link(s, "ans", c, "reply", 20);
        mt.react(c, &[]).unwrap(); // boot client
        mt.react(s, &[]).unwrap(); // boot server
        mt.react(c, &[("click", Value::Num(21.0))]).unwrap();
        // Nothing yet: the request is in flight.
        assert_eq!(mt.tier(c).borrow().nowval("shown"), Value::from(""));
        mt.advance_by(19).unwrap();
        assert_eq!(mt.tier(c).borrow().nowval("shown"), Value::from(""));
        mt.advance_by(25).unwrap(); // request arrives at t=20, reply at t=40
        assert_eq!(mt.tier(s).borrow().nowval("ans"), Value::Num(42.0));
        mt.advance_by(10).unwrap();
        assert_eq!(mt.tier(c).borrow().nowval("shown"), Value::Num(42.0));
    }

    #[test]
    fn zero_latency_cascades_within_one_call() {
        let mut mt = Multitier::new();
        let c = mt.add_tier(client());
        let s = mt.add_tier(server());
        mt.link(c, "ask", s, "req", 0);
        mt.link(s, "ans", c, "reply", 0);
        mt.react(c, &[]).unwrap();
        mt.react(s, &[]).unwrap();
        mt.react(c, &[("click", Value::Num(5.0))]).unwrap();
        assert_eq!(mt.tier(c).borrow().nowval("shown"), Value::Num(10.0));
    }

    #[test]
    fn messages_interleave_with_timers_in_time_order() {
        let mut mt = Multitier::new();
        let c = mt.add_tier(client());
        let s = mt.add_tier(server());
        mt.link(c, "ask", s, "req", 50);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        mt.el
            .borrow_mut()
            .set_timeout(30, move |_| o.borrow_mut().push("timer@30"));
        mt.react(c, &[]).unwrap();
        mt.react(s, &[]).unwrap();
        mt.react(c, &[("click", Value::Num(1.0))]).unwrap();
        mt.advance_by(100).unwrap();
        assert_eq!(*order.borrow(), vec!["timer@30"]);
        assert_eq!(
            mt.tier(s).borrow().nowval("ans"),
            Value::Num(2.0),
            "request delivered after the timer, at t=50"
        );
    }
}
