//! The standard-library `Timer` module (paper §2.2.5).
//!
//! ```text
//! hiphop module Timer(time) {
//!    async {
//!       this.react({[time.signame]: this.sec = 0});
//!       this.intv = setInterval(() =>
//!          this.react({[time.signame]: ++this.sec}), 1000);
//!    } kill {
//!       clearInterval(this.intv);
//!    }
//! }
//! ```
//!
//! The `kill` clause frees the interval whatever kills the statement —
//! the abort in `Session`, the `every(login.now)` in `Main`, anything.
//! "No user of Timer needs to explicitly call this cleanup action […]
//! This is a major modularity enhancement."

use crate::{EventLoop, TimerId};
use hiphop_core::prelude::*;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Builds a `Timer` module ticking `signal_name` once per `period_ms` of
/// virtual time on `el`, starting from 0 at spawn.
///
/// The returned module declares `inout <signal_name>` and can be
/// instantiated with `run Timer(tmo as time)`-style renamings.
pub fn timer_module(el: Rc<RefCell<EventLoop>>, signal_name: &str, period_ms: u64) -> Module {
    let sig = signal_name.to_owned();
    let el_spawn = el.clone();
    let sig_spawn = sig.clone();
    let spawn = AsyncHook::new("Timer.spawn", move |ctx| {
        let handle = ctx.handle.clone();
        let sec = Rc::new(Cell::new(0.0f64));
        handle.react(vec![(sig_spawn.clone(), Value::Num(0.0))]);
        let h2 = handle.clone();
        let sig2 = sig_spawn.clone();
        let id = el_spawn.borrow_mut().set_interval(period_ms, move |_| {
            sec.set(sec.get() + 1.0);
            h2.react(vec![(sig2.clone(), Value::Num(sec.get()))]);
        });
        // this.intv = id
        handle.set_state(Value::Num(id.raw() as f64));
    });
    let kill = AsyncHook::new("Timer.kill", move |ctx| {
        let raw = ctx.handle.state().as_num();
        if raw.is_finite() && raw >= 0.0 {
            el.borrow_mut().clear(TimerId::from_raw(raw as u64));
        }
    });
    Module::new("Timer")
        .inout(SignalDecl::new(signal_name, Direction::InOut).with_init(0i64))
        .body(Stmt::async_(AsyncSpec {
            done_signal: None,
            on_spawn: Some(spawn),
            on_kill: Some(kill),
            on_suspend: None,
            on_resume: None,
        }))
}

/// A simulated remote service with fixed latency — the substitute for the
/// paper's `authenticateSvc(name, passwd).post()` OAuth round trip
/// (§2.2.4). The `check` closure decides the reply from the request
/// payload; the reply arrives `latency_ms` later and completes the
/// enclosing `async` through `notify`.
pub fn service_async(
    el: Rc<RefCell<EventLoop>>,
    latency_ms: u64,
    done_signal: &str,
    request: impl Fn(&dyn hiphop_core::expr::EvalEnv) -> Value + 'static,
    check: impl Fn(&Value) -> Value + 'static,
) -> Stmt {
    let check = Rc::new(check);
    let spawn = AsyncHook::new("service.spawn", move |ctx| {
        let payload = request(ctx.env);
        let handle = ctx.handle.clone();
        let check = check.clone();
        el.borrow_mut().set_timeout(latency_ms, move |_| {
            handle.notify(check(&payload));
        });
    });
    Stmt::async_(AsyncSpec {
        done_signal: Some(done_signal.to_owned()),
        on_spawn: Some(spawn),
        on_kill: None,
        on_suspend: None,
        on_resume: None,
    })
}
