//! The sharded multi-session server: many reactive machines, one pool.
//!
//! The paper's flagship deployment (Skini, §4.2) multiplexes *audiences
//! of hundreds of concurrent participants*, each driving their own
//! reactive session, behind one orchestrating server — the shape the
//! companion multitier paper calls "many clients, one Hop server". A
//! [`SessionPool`] owns N shards; each shard is a worker thread with its
//! own virtual-clock [`EventLoop`] and a `SessionId → Machine` map.
//! Sessions are hash-routed to shards, driven by batched input events:
//! [`SessionPool::inject`] buffers `(session, signal, value)` triples and
//! [`SessionPool::tick`] sweeps every shard in parallel, running one
//! reaction per session and draining per-session output batches.
//!
//! # Threading model
//!
//! [`Machine`] is deliberately single-threaded (`Rc`-based sinks,
//! listeners and async hooks), so machines never cross threads: each
//! shard *constructs its own machines* from a `Send + Sync` factory
//! closure and everything that flows over the command channels —
//! [`SessionId`], signal names, [`Value`]s, [`OutputEvent`]s, metric
//! snapshots — is plain `Send` data.
//!
//! # Isolation guarantees
//!
//! Reactions are atomic under error (machine rollback, PR3): a session
//! whose reaction fails — injected host panic, causality error — rolls
//! back to its pre-reaction snapshot and stays serviceable, and its
//! shard-mates are untouched (their machines share nothing but the
//! shard's clock and metrics sink). The pool records the fault in the
//! [`TickReport`] and counts it in the shard's roll-up; with rollback
//! disabled a poisoned session is quarantined (skipped from then on)
//! without taking down its shard.
//!
//! # Durability
//!
//! [`SessionPool::snapshot`] serializes every session — machine state
//! planes, chaos RNG position, live supervision runs — into one
//! versioned [`hiphop_runtime::PoolSnapshot`]; [`SessionPool::restore`]
//! rebuilds it onto a fresh pool of **any** shard count, verifying every
//! session's digest against the recorded hash. Crash recovery composes
//! a restore with [`SessionPool::replay`] anchored at the snapshot
//! (`ReplayOptions::from_snapshot`), re-driving only the journal suffix.
//! [`SessionPool::migrate`] moves one live session between shards —
//! bytes move, never machines — and [`Rebalancer`] plans such moves off
//! skewed shards from [`PoolMetrics`].

use crate::supervisor::Supervisor;
use crate::{Driver, EventLoop};
use hiphop_core::value::Value;
use hiphop_runtime::flight::{
    digest_hash, DigestMismatch, Recorder, RecorderConfig, RecordedInput, Recording,
    ReplayOptions, ReplayReport,
};
use hiphop_runtime::snapshot::{PoolSnapshot, SessionSnapshot, SNAPSHOT_FORMAT_VERSION};
use hiphop_runtime::telemetry::{shared, SpanKind, SpanRecord};
use hiphop_runtime::{
    cohort_key, react_cohort, CohortWidth, EngineMode, LevelActivity, Machine, MetricsSink,
    OutputEvent, PoolMetrics, Reaction, RuntimeError, ShardRollup,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Stable identifier of one session in a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Builds a session's machine on its shard thread. Fallible so callers
/// can surface compile errors per session instead of panicking a shard.
pub type SessionFactory = dyn Fn(SessionId) -> Result<Machine, String> + Send + Sync;

/// What a shard hands the rich factory ([`SessionPool::new_with`]) when
/// building a session.
pub struct SessionCtx<'a> {
    /// The shard's event loop — shared by every session on the shard,
    /// and the clock any [`Supervisor`] for this session must run on.
    pub el: &'a Rc<RefCell<EventLoop>>,
}

/// A built session: the machine plus (optionally) the supervisor
/// orchestrating its async activities. The pool needs the supervisor to
/// snapshot, export and adopt supervision state during checkpoints and
/// live migration; plain-factory pools ([`SessionPool::new`]) carry
/// `None` and snapshot machines only.
pub struct SessionBuild {
    /// The session's reactive machine.
    pub machine: Machine,
    /// The supervisor driving the machine's supervised activities, if
    /// any. Must be built over [`SessionCtx::el`].
    pub supervisor: Option<Rc<Supervisor>>,
}

/// The rich session factory: builds a machine *and* its supervision
/// plumbing on the shard thread. Restores call it too (then overwrite
/// the fresh machine's state), so it must be deterministic in `id`.
pub type RichSessionFactory =
    dyn Fn(SessionId, &SessionCtx<'_>) -> Result<SessionBuild, String> + Send + Sync;

/// SplitMix64 — the pool's deterministic router. `std`'s `HashMap`
/// hasher is randomly keyed per process, which would make shard
/// assignment (and therefore every metrics table) nondeterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// One session's committed outputs for one tick (one entry per reaction
/// the session ran this tick: the swept reaction plus any mailbox
/// follow-ups).
#[derive(Debug, Clone)]
pub struct SessionOutputs {
    /// The session.
    pub session: SessionId,
    /// Output snapshots, exactly as [`hiphop_runtime::Reaction::outputs`].
    pub outputs: Vec<OutputEvent>,
    /// Whether the session's program has terminated.
    pub terminated: bool,
}

/// A failed (rolled-back) reaction inside a tick.
#[derive(Debug, Clone)]
pub struct SessionFault {
    /// The session whose reaction failed.
    pub session: SessionId,
    /// Rendered error.
    pub error: String,
    /// Whether the session was quarantined (poisoned with rollback
    /// disabled); `false` means it rolled back and stays serviceable.
    pub quarantined: bool,
}

/// What one [`SessionPool::tick`] observed across every shard.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Tick number (0-based).
    pub tick: u64,
    /// Per-session output batches, ordered by session id.
    pub outputs: Vec<SessionOutputs>,
    /// Failed reactions, ordered by session id.
    pub faults: Vec<SessionFault>,
    /// Committed reactions this tick.
    pub reactions: usize,
    /// Sessions currently quarantined (poisoned, skipped by the sweep)
    /// across the reporting shards. Together with `outputs` this
    /// accounts for every opened session, so tick totals stay
    /// consistent with [`PoolMetrics`] roll-ups, which count live
    /// sessions only.
    pub quarantined: usize,
    /// Slowest shard's reaction time this tick, microseconds (the
    /// tick's critical path — shards sweep concurrently).
    pub critical_path_us: f64,
}

impl TickReport {
    /// The output batch for `session`, if it reacted this tick.
    pub fn session(&self, session: SessionId) -> Option<&SessionOutputs> {
        self.outputs.iter().find(|o| o.session == session)
    }
}

// ---------------------------------------------------------------------------
// Shard worker protocol. Every payload is Send; machines never cross.

enum Cmd {
    /// Build machines for the given sessions and run their boot
    /// reactions. Replies with the boot batch — a failed boot reaction
    /// rolls back and is reported as a fault; only factory errors are
    /// fatal.
    Open(Vec<SessionId>, Sender<Result<ShardTick, String>>),
    /// Run one reaction per session with the batched inputs, then
    /// advance the shard clock.
    Tick {
        inputs: Vec<(SessionId, String, Value)>,
        reply: Sender<ShardTick>,
    },
    /// State digests of every live session (for isolation tests and
    /// flight-recorder checkpoints).
    Digests(Sender<Vec<(SessionId, String)>>),
    /// Metrics roll-up snapshot.
    Metrics(Sender<ShardRollup>),
    /// Observability knobs: span tracing (timestamps against the shared
    /// `epoch`) and per-level sweep activity counters (applied to
    /// sessions opened afterwards), plus the cohort execution mode.
    Config {
        tracing: bool,
        level_activity: bool,
        epoch: Instant,
        cohort: Option<CohortWidth>,
        engine: Option<EngineMode>,
        reply: Sender<()>,
    },
    /// Close (drop) the given sessions. Replies with how many existed.
    Close(Vec<SessionId>, Sender<usize>),
    /// Serialize every session (machine + supervision state) for a pool
    /// checkpoint. Non-destructive: sessions keep running.
    Snapshot(Sender<Vec<SessionSnapshot>>),
    /// Fast-forward the shard clock to `now_ms`, then rebuild the given
    /// sessions from their snapshots: factory build (no boot reaction),
    /// state restore, supervision adoption, per-session digest check.
    Restore {
        now_ms: u64,
        sessions: Vec<SessionSnapshot>,
        reply: Sender<Result<usize, String>>,
    },
    /// Migration source: serialize one session, tear down its local
    /// supervision runs (timers cleared, cancel hooks run), drop it.
    Extract(SessionId, Sender<Result<Box<SessionSnapshot>, String>>),
    /// Migration target: rebuild one session from its snapshot. Shard
    /// clocks advance in lockstep, so no fast-forward is needed.
    Adopt(Box<SessionSnapshot>, Sender<Result<(), String>>),
    Shutdown,
}

struct ShardTick {
    outputs: Vec<SessionOutputs>,
    faults: Vec<SessionFault>,
    reactions: usize,
    /// Sessions quarantined on this shard as of this sweep.
    quarantined: usize,
    busy_us: f64,
    /// Sweep + reaction spans from this shard's tick (empty unless
    /// tracing is on). Sweep spans arrive with `parent == 0`; the pool
    /// re-parents them under its tick span.
    spans: Vec<SpanRecord>,
}

struct ShardHandle {
    tx: Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

/// Per-shard worker state — lives entirely on the shard thread.
struct ShardState {
    index: usize,
    tick_ms: u64,
    el: Rc<RefCell<EventLoop>>,
    sessions: BTreeMap<SessionId, Slot>,
    sink: Rc<RefCell<MetricsSink>>,
    rollbacks: u64,
    quarantined: usize,
    factory: Arc<RichSessionFactory>,
    // Observability (Cmd::Config): span tracing against the pool's
    // epoch, a shard-unique span id sequence, and level-activity arming
    // for newly opened sessions.
    tracing: bool,
    level_activity: bool,
    epoch: Instant,
    span_seq: u64,
    /// Cohort execution mode: when set, each tick groups the shard's
    /// cohort-eligible sessions by [`cohort_key`] and advances every
    /// group through one bit-parallel sweep instead of N scalar ones.
    cohort: Option<CohortWidth>,
    /// Engine override applied to every session (current and future);
    /// `None` keeps whatever the factory selected.
    engine: Option<EngineMode>,
}

struct Slot {
    driver: Driver,
    quarantined: bool,
    /// The supervisor built by a rich factory, for supervision-state
    /// snapshot/export/adopt; `None` under the plain machine factory.
    supervisor: Option<Rc<Supervisor>>,
}

impl ShardState {
    /// Shard-unique span ids: shard `k` allocates in `(k+1) << 40 | seq`,
    /// so ids never collide across shards or with the pool's tick spans.
    fn next_span_id(&mut self) -> u64 {
        self.span_seq += 1;
        ((self.index as u64 + 1) << 40) | self.span_seq
    }

    fn open(&mut self, ids: Vec<SessionId>) -> Result<ShardTick, String> {
        let mut out = ShardTick {
            outputs: Vec::new(),
            faults: Vec::new(),
            reactions: 0,
            quarantined: 0,
            busy_us: 0.0,
            spans: Vec::new(),
        };
        let t0 = std::time::Instant::now();
        for id in ids {
            let build = (self.factory)(id, &SessionCtx { el: &self.el })
                .map_err(|e| format!("shard {}: {id}: {e}", self.index))?;
            let mut machine = build.machine;
            if let Some(mode) = self.engine {
                // Applied before the boot reaction so even instant 0
                // runs under the requested engine (a cyclic circuit
                // resolves it to the nearest capable one).
                let _ = machine.set_engine(mode);
            }
            machine.attach_sink(self.sink.clone());
            if self.level_activity {
                machine.enable_level_activity();
            }
            let driver = Driver {
                machine: Rc::new(RefCell::new(machine)),
                el: self.el.clone(),
            };
            let mut quarantined = false;
            // A failed boot reaction rolls back like any other fault: the
            // session stays open (un-booted — the next tick runs its
            // first instant) unless the machine is poisoned.
            match driver.react(&[]) {
                Ok(boot) => {
                    out.reactions += boot.len();
                    out.outputs.push(SessionOutputs {
                        session: id,
                        outputs: boot.iter().flat_map(|r| r.outputs.clone()).collect(),
                        terminated: boot.iter().any(|r| r.terminated),
                    });
                }
                Err(e) => {
                    self.rollbacks += 1;
                    quarantined = driver.machine.borrow().is_poisoned();
                    if quarantined {
                        self.quarantined += 1;
                    }
                    out.faults.push(SessionFault {
                        session: id,
                        error: format!("boot: {e}"),
                        quarantined,
                    });
                }
            }
            self.sessions.insert(
                id,
                Slot {
                    driver,
                    quarantined,
                    supervisor: build.supervisor,
                },
            );
        }
        out.quarantined = self.quarantined;
        out.busy_us = t0.elapsed().as_nanos() as f64 / 1e3;
        Ok(out)
    }

    fn tick(&mut self, inputs: Vec<(SessionId, String, Value)>) -> ShardTick {
        let mut per_session: BTreeMap<SessionId, Vec<(String, Value)>> = BTreeMap::new();
        for (id, signal, value) in inputs {
            per_session.entry(id).or_default().push((signal, value));
        }
        let mut out = ShardTick {
            outputs: Vec::new(),
            faults: Vec::new(),
            reactions: 0,
            quarantined: 0,
            busy_us: 0.0,
            spans: Vec::new(),
        };
        // When tracing, the sweep span is allocated up front so the
        // per-session reaction spans can parent to it; its timing is
        // patched in at the end.
        let sweep_span = self.tracing.then(|| {
            (
                self.next_span_id(),
                self.epoch.elapsed().as_micros() as u64,
            )
        });
        let t0 = std::time::Instant::now();
        if let Some(width) = self.cohort {
            // Bit-parallel sweep: eligible sessions advance in lockstep
            // cohorts; per-reaction spans are not emitted (the sweep
            // span still is — cohorts have no per-session wall time).
            self.sweep_cohort(&per_session, width, &mut out);
        } else {
            // Local copies: the loop holds `self.sessions` mutably, so
            // span ids come from a local sequence written back
            // afterwards.
            let shard_tag = (self.index as u64 + 1) << 40;
            let mut span_seq = self.span_seq;
            for (&id, slot) in &mut self.sessions {
                if slot.quarantined {
                    continue;
                }
                let empty = Vec::new();
                let inputs = per_session.get(&id).unwrap_or(&empty);
                let refs: Vec<(&str, Value)> =
                    inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                let span_start = sweep_span.map(|_| self.epoch.elapsed().as_micros() as u64);
                let reacted = slot.driver.react(&refs);
                if let (Some((sweep_id, _)), Some(ts_us)) = (sweep_span, span_start) {
                    let end = self.epoch.elapsed().as_micros() as u64;
                    span_seq += 1;
                    let span_id = shard_tag | span_seq;
                    out.spans.push(SpanRecord {
                        id: span_id,
                        parent: sweep_id,
                        name: id.to_string(),
                        kind: SpanKind::Reaction,
                        shard: self.index as u32,
                        ts_us,
                        dur_us: (end - ts_us).max(1),
                    });
                }
                self.span_seq = span_seq;
                match reacted {
                    Ok(reactions) => {
                        out.reactions += reactions.len();
                        out.outputs.push(SessionOutputs {
                            session: id,
                            outputs: reactions.iter().flat_map(|r| r.outputs.clone()).collect(),
                            terminated: reactions.iter().any(|r| r.terminated),
                        });
                    }
                    Err(e) => {
                        // The failed reaction rolled back: the session's
                        // digest is its pre-reaction digest and
                        // shard-mates never observe the fault. Quarantine
                        // only the (rollback-disabled) poisoned case.
                        self.rollbacks += 1;
                        let quarantined = slot.driver.machine.borrow().is_poisoned();
                        if quarantined {
                            slot.quarantined = true;
                            self.quarantined += 1;
                        }
                        out.faults.push(SessionFault {
                            session: id,
                            error: e.to_string(),
                            quarantined,
                        });
                    }
                }
            }
        }
        // Advance the shard's virtual clock and drain any timer-driven
        // mailbox work (async completions, supervised retries).
        self.el.borrow_mut().advance_by(self.tick_ms);
        for (&id, slot) in &mut self.sessions {
            if slot.quarantined {
                continue;
            }
            let drained = slot.driver.machine.borrow_mut().drain();
            match drained {
                Ok(reactions) if !reactions.is_empty() => {
                    out.reactions += reactions.len();
                    out.outputs.push(SessionOutputs {
                        session: id,
                        outputs: reactions.iter().flat_map(|r| r.outputs.clone()).collect(),
                        terminated: reactions.iter().any(|r| r.terminated),
                    });
                }
                Ok(_) => {}
                Err(e) => {
                    self.rollbacks += 1;
                    let quarantined = slot.driver.machine.borrow().is_poisoned();
                    if quarantined {
                        slot.quarantined = true;
                        self.quarantined += 1;
                    }
                    out.faults.push(SessionFault {
                        session: id,
                        error: e.to_string(),
                        quarantined,
                    });
                }
            }
        }
        out.quarantined = self.quarantined;
        out.busy_us = t0.elapsed().as_nanos() as f64 / 1e3;
        if let Some((sweep_id, sweep_ts)) = sweep_span {
            let end = self.epoch.elapsed().as_micros() as u64;
            out.spans.push(SpanRecord {
                id: sweep_id,
                parent: 0, // re-parented to the pool's tick span
                name: format!("shard {}", self.index),
                kind: SpanKind::Sweep,
                shard: self.index as u32,
                ts_us: sweep_ts,
                dur_us: (end - sweep_ts).max(1),
            });
        }
        out
    }

    /// One cohort-mode sweep: stages the batched inputs, groups the
    /// shard's eligible sessions by circuit identity ([`cohort_key`])
    /// and advances each group through a single bit-parallel sweep
    /// ([`react_cohort`]); ineligible sessions (non-levelized engines,
    /// fine-grained observability armed) take the scalar path for the
    /// tick. Outcome handling — outputs, synchronously drained mailbox
    /// follow-ups, faults, rollback/quarantine bookkeeping — matches the
    /// scalar sweep exactly, so cohort mode is a pure execution
    /// strategy; the only observable difference is telemetry
    /// granularity (no per-reaction spans inside a cohort).
    fn sweep_cohort(
        &mut self,
        per_session: &BTreeMap<SessionId, Vec<(String, Value)>>,
        width: CohortWidth,
        out: &mut ShardTick,
    ) {
        // Stage inputs up front (the scalar path stages through
        // `Driver::react`). A staging error faults the session and it
        // skips this tick's reaction, exactly as in the scalar path.
        let mut groups: BTreeMap<u64, Vec<SessionId>> = BTreeMap::new();
        let mut scalars: Vec<SessionId> = Vec::new();
        let mut staging_faults: Vec<(SessionId, String)> = Vec::new();
        for (&id, slot) in &self.sessions {
            if slot.quarantined {
                continue;
            }
            let mut machine = slot.driver.machine.borrow_mut();
            let mut staged = Ok(());
            for (signal, value) in per_session.get(&id).map_or(&[][..], |v| v) {
                staged = machine.set_input(signal, Some(value.clone()));
                if staged.is_err() {
                    break;
                }
            }
            match staged {
                Err(e) => staging_faults.push((id, e.to_string())),
                Ok(()) => match cohort_key(&machine) {
                    Some(key) => groups.entry(key).or_default().push(id),
                    None => scalars.push(id),
                },
            }
        }
        for (id, error) in staging_faults {
            self.rollbacks += 1;
            out.faults.push(SessionFault {
                session: id,
                error,
                quarantined: false,
            });
        }
        for ids in groups.into_values() {
            let mut outcomes: Vec<(SessionId, Result<Vec<Reaction>, RuntimeError>)> =
                Vec::with_capacity(ids.len());
            {
                let mut borrows: Vec<std::cell::RefMut<'_, Machine>> = ids
                    .iter()
                    .map(|id| self.sessions[id].driver.machine.borrow_mut())
                    .collect();
                let mut lanes: Vec<&mut Machine> =
                    borrows.iter_mut().map(|b| &mut **b).collect();
                let results = react_cohort(&mut lanes, width);
                drop(lanes);
                for ((id, result), machine) in
                    ids.iter().zip(results).zip(borrows.iter_mut())
                {
                    // Mirror `Driver::react`: the committed reaction plus
                    // any synchronously drained mailbox follow-ups form
                    // one batch, and a drain error faults the whole
                    // batch.
                    let reacted = result.and_then(|r| {
                        machine.drain().map(|mut more| {
                            let mut batch = vec![r];
                            batch.append(&mut more);
                            batch
                        })
                    });
                    outcomes.push((*id, reacted));
                }
            }
            for (id, reacted) in outcomes {
                self.report_outcome(id, reacted, out);
            }
        }
        for id in scalars {
            let reacted = self.sessions[&id].driver.react(&[]);
            self.report_outcome(id, reacted, out);
        }
    }

    /// Folds one session's reaction outcome into the tick report, with
    /// the scalar sweep's rollback/quarantine bookkeeping.
    fn report_outcome(
        &mut self,
        id: SessionId,
        reacted: Result<Vec<Reaction>, RuntimeError>,
        out: &mut ShardTick,
    ) {
        match reacted {
            Ok(reactions) => {
                out.reactions += reactions.len();
                out.outputs.push(SessionOutputs {
                    session: id,
                    outputs: reactions.iter().flat_map(|r| r.outputs.clone()).collect(),
                    terminated: reactions.iter().any(|r| r.terminated),
                });
            }
            Err(e) => {
                self.rollbacks += 1;
                let slot = self.sessions.get_mut(&id).expect("live session");
                let quarantined = slot.driver.machine.borrow().is_poisoned();
                if quarantined {
                    slot.quarantined = true;
                    self.quarantined += 1;
                }
                out.faults.push(SessionFault {
                    session: id,
                    error: e.to_string(),
                    quarantined,
                });
            }
        }
    }

    fn close(&mut self, ids: Vec<SessionId>) -> usize {
        let mut closed = 0;
        for id in ids {
            if let Some(slot) = self.sessions.remove(&id) {
                if slot.quarantined {
                    self.quarantined -= 1;
                }
                closed += 1;
            }
        }
        closed
    }

    /// Serializes every session on this shard. Non-destructive.
    fn snapshot_sessions(&self) -> Vec<SessionSnapshot> {
        self.sessions
            .iter()
            .map(|(&id, slot)| self.snapshot_one(id, slot))
            .collect()
    }

    fn snapshot_one(&self, id: SessionId, slot: &Slot) -> SessionSnapshot {
        let m = slot.driver.machine.borrow();
        SessionSnapshot {
            session: id.0,
            quarantined: slot.quarantined,
            digest: digest_hash(&m.state_digest()),
            machine: m.snapshot(),
            activities: slot
                .supervisor
                .as_ref()
                .map(|s| s.snapshot_activities(&self.el.borrow()))
                .unwrap_or_default(),
        }
    }

    /// Rebuilds one session from its snapshot: factory build (no boot
    /// reaction), machine restore, supervision adoption, then a digest
    /// check against the hash the snapshot recorded at capture time.
    fn restore_one(&mut self, snap: &SessionSnapshot) -> Result<(), String> {
        let id = SessionId(snap.session);
        let build = (self.factory)(id, &SessionCtx { el: &self.el })
            .map_err(|e| format!("shard {}: {id}: {e}", self.index))?;
        let mut machine = build.machine;
        machine.attach_sink(self.sink.clone());
        if self.level_activity {
            machine.enable_level_activity();
        }
        machine
            .restore(&snap.machine)
            .map_err(|e| format!("{id}: {e}"))?;
        let driver = Driver {
            machine: Rc::new(RefCell::new(machine)),
            el: self.el.clone(),
        };
        match (&build.supervisor, snap.activities.is_empty()) {
            (Some(sup), _) => {
                let m = driver.machine.borrow();
                let mut el = self.el.borrow_mut();
                sup.adopt(&mut el, &m, &snap.activities)
                    .map_err(|e| format!("{id}: {e}"))?;
            }
            (None, false) => {
                return Err(format!(
                    "{id}: snapshot carries {} supervised activity(ies) but the factory \
                     built no supervisor",
                    snap.activities.len()
                ));
            }
            (None, true) => {}
        }
        let got = digest_hash(&driver.machine.borrow().state_digest());
        if got != snap.digest {
            return Err(format!(
                "{id}: digest mismatch after restore: snapshot recorded {}, machine \
                 digests to {got}",
                snap.digest
            ));
        }
        if snap.quarantined {
            self.quarantined += 1;
        }
        self.sessions.insert(
            id,
            Slot {
                driver,
                quarantined: snap.quarantined,
                supervisor: build.supervisor,
            },
        );
        Ok(())
    }

    fn restore_shard(
        &mut self,
        now_ms: u64,
        snaps: Vec<SessionSnapshot>,
    ) -> Result<usize, String> {
        let now = self.el.borrow().now();
        if now_ms < now {
            return Err(format!(
                "shard {}: clock is at {now} ms, cannot rewind to {now_ms} ms",
                self.index
            ));
        }
        // Fast-forward the (timer-less) fresh clock first, so adopted
        // retry/timeout delays schedule relative to the snapshot's
        // virtual time.
        self.el.borrow_mut().advance_by(now_ms - now);
        let n = snaps.len();
        for snap in &snaps {
            self.restore_one(snap)?;
        }
        Ok(n)
    }

    /// Migration source side: serialize, tear down, drop.
    fn extract(&mut self, id: SessionId) -> Result<SessionSnapshot, String> {
        let (mut snap, sup) = {
            let slot = self
                .sessions
                .get(&id)
                .ok_or_else(|| format!("shard {}: {id}: no such session", self.index))?;
            (self.snapshot_one(id, slot), slot.supervisor.clone())
        };
        // Export (not merely snapshot) the supervision runs: the source
        // shard's timers are cleared and cancel hooks run, so abandoned
        // attempts release local resources before the session leaves.
        if let Some(sup) = sup {
            snap.activities = sup.export(&mut self.el.borrow_mut());
        }
        let slot = self.sessions.remove(&id).expect("present: checked above");
        if slot.quarantined {
            self.quarantined -= 1;
        }
        Ok(snap)
    }

    fn digests(&self) -> Vec<(SessionId, String)> {
        self.sessions
            .iter()
            .filter(|(_, s)| !s.quarantined)
            .map(|(&id, s)| (id, s.driver.machine.borrow().state_digest()))
            .collect()
    }

    fn rollup(&self) -> ShardRollup {
        let sink = self.sink.borrow();
        let mut level_activity = LevelActivity::default();
        for slot in self.sessions.values() {
            if let Some(la) = slot.driver.machine.borrow().level_activity() {
                level_activity.merge(la);
            }
        }
        ShardRollup {
            shard: self.index,
            sessions: self.sessions.values().filter(|s| !s.quarantined).count(),
            quarantined: self.quarantined,
            rollbacks: self.rollbacks,
            metrics: sink.snapshot(),
            samples_us: sink.duration_samples_us(),
            level_activity,
        }
    }
}

fn shard_main(mut state: ShardState, rx: Receiver<Cmd>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Open(ids, reply) => {
                let _ = reply.send(state.open(ids));
            }
            Cmd::Tick { inputs, reply } => {
                let _ = reply.send(state.tick(inputs));
            }
            Cmd::Digests(reply) => {
                let _ = reply.send(state.digests());
            }
            Cmd::Metrics(reply) => {
                let _ = reply.send(state.rollup());
            }
            Cmd::Config {
                tracing,
                level_activity,
                epoch,
                cohort,
                engine,
                reply,
            } => {
                state.tracing = tracing;
                state.level_activity = level_activity;
                state.epoch = epoch;
                state.cohort = cohort;
                state.engine = engine;
                // Arm already-open sessions too (tracing is often turned
                // on after a warm-up phase).
                if level_activity {
                    for slot in state.sessions.values() {
                        slot.driver.machine.borrow_mut().enable_level_activity();
                    }
                }
                // Engine hops apply mid-run as well: the next reaction
                // of every open session uses the new engine (the sparse
                // engine rebuilds its baseline on the first instant
                // after a hop).
                if let Some(mode) = engine {
                    for slot in state.sessions.values() {
                        let _ = slot.driver.machine.borrow_mut().set_engine(mode);
                    }
                }
                let _ = reply.send(());
            }
            Cmd::Close(ids, reply) => {
                let _ = reply.send(state.close(ids));
            }
            Cmd::Snapshot(reply) => {
                let _ = reply.send(state.snapshot_sessions());
            }
            Cmd::Restore {
                now_ms,
                sessions,
                reply,
            } => {
                let _ = reply.send(state.restore_shard(now_ms, sessions));
            }
            Cmd::Extract(id, reply) => {
                let _ = reply.send(state.extract(id).map(Box::new));
            }
            Cmd::Adopt(snap, reply) => {
                let _ = reply.send(state.restore_one(&snap));
            }
            Cmd::Shutdown => break,
        }
    }
}

// ---------------------------------------------------------------------------
// The pool.

/// Error from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError(pub String);

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session pool: {}", self.0)
    }
}
impl std::error::Error for PoolError {}

/// A sharded multi-session reactive server. See the module docs.
pub struct SessionPool {
    shards: Vec<ShardHandle>,
    tick_ms: u64,
    ticks: u64,
    critical_path_us: f64,
    /// Buffered inputs, flushed by the next [`SessionPool::tick`].
    pending: Vec<(SessionId, String, Value)>,
    sessions: usize,
    /// Every opened (not-yet-closed) session, for snapshots and
    /// migration planning.
    roster: BTreeSet<SessionId>,
    /// Routing overrides from live migration; sessions not listed live
    /// on their hash-routed home shard.
    routes: HashMap<SessionId, usize>,
    serial_sweep: bool,
    // Observability plane (issue 6): the armed flight recorder, span
    // tracing state, and the collected cross-shard spans.
    recorder: Option<Recorder>,
    tracing: bool,
    level_activity: bool,
    epoch: Instant,
    spans: Vec<SpanRecord>,
    tick_span_seq: u64,
    cohort: Option<CohortWidth>,
    engine: Option<EngineMode>,
}

impl SessionPool {
    /// Spawns `shards` worker threads. `tick_ms` is how far each shard's
    /// virtual clock advances per [`SessionPool::tick`]; `factory` builds
    /// each session's machine *on its shard thread* (machines are not
    /// `Send`).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new(
        shards: usize,
        tick_ms: u64,
        factory: impl Fn(SessionId) -> Result<Machine, String> + Send + Sync + 'static,
    ) -> SessionPool {
        SessionPool::new_with(shards, tick_ms, move |id, _ctx| {
            factory(id).map(|machine| SessionBuild {
                machine,
                supervisor: None,
            })
        })
    }

    /// Like [`SessionPool::new`] but with the rich factory: the closure
    /// receives a [`SessionCtx`] (the shard's event loop) and returns a
    /// [`SessionBuild`], so sessions can come with a [`Supervisor`]
    /// whose activity state then survives pool snapshots and live
    /// migration.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new_with(
        shards: usize,
        tick_ms: u64,
        factory: impl Fn(SessionId, &SessionCtx<'_>) -> Result<SessionBuild, String>
            + Send
            + Sync
            + 'static,
    ) -> SessionPool {
        assert!(shards > 0, "a pool needs at least one shard");
        let factory: Arc<RichSessionFactory> = Arc::new(factory);
        let shards = (0..shards)
            .map(|index| {
                let (tx, rx) = channel();
                let factory = factory.clone();
                let join = std::thread::Builder::new()
                    .name(format!("hiphop-shard-{index}"))
                    .spawn(move || {
                        let state = ShardState {
                            index,
                            tick_ms,
                            el: Rc::new(RefCell::new(EventLoop::new())),
                            sessions: BTreeMap::new(),
                            sink: shared(MetricsSink::new()),
                            rollbacks: 0,
                            quarantined: 0,
                            factory,
                            tracing: false,
                            level_activity: false,
                            epoch: Instant::now(),
                            span_seq: 0,
                            cohort: None,
                            engine: None,
                        };
                        shard_main(state, rx);
                    })
                    .expect("spawn shard thread");
                ShardHandle { tx, join: Some(join) }
            })
            .collect();
        SessionPool {
            shards,
            tick_ms,
            ticks: 0,
            critical_path_us: 0.0,
            pending: Vec::new(),
            sessions: 0,
            roster: BTreeSet::new(),
            routes: HashMap::new(),
            serial_sweep: false,
            recorder: None,
            tracing: false,
            level_activity: false,
            epoch: Instant::now(),
            spans: Vec::new(),
            tick_span_seq: 0,
            cohort: None,
            engine: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of opened sessions (including quarantined ones).
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Virtual time each shard clock has reached, milliseconds.
    pub fn now(&self) -> u64 {
        self.ticks * self.tick_ms
    }

    /// Deterministic shard routing for `session`: the live-migration
    /// override if one exists, else the splitmix64 hash route.
    pub fn shard_of(&self, session: SessionId) -> usize {
        self.routes.get(&session).copied().unwrap_or_else(|| {
            (splitmix64(session.0) % self.shards.len() as u64) as usize
        })
    }

    /// Session ids currently routed to `shard`, in id order.
    pub fn sessions_on(&self, shard: usize) -> Vec<SessionId> {
        self.roster
            .iter()
            .copied()
            .filter(|&id| self.shard_of(id) == shard)
            .collect()
    }

    /// Opens `sessions`, each built by the factory on its home shard,
    /// and runs their boot reactions. Returns the boot batch as a
    /// [`TickReport`] (tick 0 of each session's life): output batches
    /// ordered by session id, with failed boot reactions rolled back and
    /// reported in [`TickReport::faults`] like any tick fault.
    ///
    /// # Errors
    ///
    /// Fails if a factory call fails (the session cannot exist) or if a
    /// shard died.
    pub fn open(&mut self, sessions: &[SessionId]) -> Result<TickReport, PoolError> {
        let mut per_shard: Vec<Vec<SessionId>> = vec![Vec::new(); self.shards.len()];
        for &id in sessions {
            per_shard[self.shard_of(id)].push(id);
        }
        let mut replies = Vec::new();
        for (shard, ids) in per_shard.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let (tx, rx) = channel();
            self.shards[shard]
                .tx
                .send(Cmd::Open(ids, tx))
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut report = TickReport { tick: self.ticks, ..TickReport::default() };
        let mut slowest = 0.0f64;
        for (shard, rx) in replies {
            let st = rx
                .recv()
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?
                .map_err(PoolError)?;
            report.outputs.extend(st.outputs);
            report.faults.extend(st.faults);
            report.reactions += st.reactions;
            report.quarantined += st.quarantined;
            slowest = slowest.max(st.busy_us);
        }
        report.outputs.sort_by_key(|o| o.session);
        report.faults.sort_by_key(|f| f.session);
        // Informational only: boot wall time is dominated by machine
        // construction, not reaction work, so it is not folded into the
        // pool's reaction critical path.
        report.critical_path_us = slowest;
        self.sessions += sessions.len();
        self.roster.extend(sessions.iter().copied());
        if self.recorder.is_some() {
            let all = self.digests()?;
            let ids: Vec<u64> = sessions.iter().map(|id| id.0).collect();
            let boot: Vec<(u64, String)> = sessions
                .iter()
                .filter_map(|id| all.get(id).map(|d| (id.0, d.clone())))
                .collect();
            if let Some(r) = self.recorder.as_mut() {
                r.record_open(self.tick_ms, &ids, boot);
            }
        }
        Ok(report)
    }

    /// Opens sessions `0..n` (the common load-scenario shape).
    ///
    /// # Errors
    ///
    /// See [`SessionPool::open`].
    pub fn open_many(&mut self, n: u64) -> Result<TickReport, PoolError> {
        let ids: Vec<SessionId> = (0..n).map(SessionId).collect();
        self.open(&ids)
    }

    /// Switches [`SessionPool::tick`] between the default parallel
    /// fan-out sweep and a serial one-shard-at-a-time sweep. Outputs are
    /// identical either way (sessions never interact); serial mode is
    /// for measurement on oversubscribed hosts, where a concurrently
    /// swept shard's wall-clock time includes time spent descheduled and
    /// the per-tick critical path would be overstated.
    pub fn set_serial_sweep(&mut self, serial: bool) {
        self.serial_sweep = serial;
    }

    /// Pushes the current observability knobs to every shard.
    fn push_config(&self) -> Result<(), PoolError> {
        for (shard, h) in self.shards.iter().enumerate() {
            let (tx, rx) = channel();
            h.tx.send(Cmd::Config {
                tracing: self.tracing,
                level_activity: self.level_activity,
                epoch: self.epoch,
                cohort: self.cohort,
                engine: self.engine,
                reply: tx,
            })
            .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            rx.recv()
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
        }
        Ok(())
    }

    /// Turns cross-shard span tracing on or off. While on, every
    /// [`SessionPool::tick`] emits a tick span with per-shard sweep
    /// children and per-session reaction grandchildren, all stamped
    /// against one shared epoch; collect them with
    /// [`SessionPool::take_spans`] and render with
    /// [`hiphop_runtime::chrome_trace`].
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn set_tracing(&mut self, on: bool) -> Result<(), PoolError> {
        self.tracing = on;
        self.push_config()
    }

    /// Arms per-level sweep activity counters on every session (current
    /// and future); the counts surface in
    /// [`ShardRollup::level_activity`] / [`PoolMetrics::level_activity`]
    /// and the Prometheus exposition.
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn set_level_activity(&mut self, on: bool) -> Result<(), PoolError> {
        self.level_activity = on;
        self.push_config()
    }

    /// Switches the pool between scalar sweeps (the default, `None`) and
    /// bit-parallel cohort execution: each shard groups its sessions by
    /// compiled-circuit identity and advances every group through one
    /// lockstep level sweep per tick, 32 sessions per `u64` lane word
    /// ([`CohortWidth::U64`]) or 4-word vectorizable blocks
    /// ([`CohortWidth::Wide`]).
    ///
    /// Cohort mode is a pure execution strategy, not a semantic mode:
    /// outputs, faults, rollback isolation and state digests are
    /// bit-identical to scalar sweeps (the cohort differential battery
    /// proves it), so recordings made in either mode replay in the
    /// other. Sessions that cannot join a cohort — non-levelized engine
    /// selection, fine-grained observability armed — transparently run
    /// scalar; a session whose host action faults mid-sweep is peeled
    /// from its cohort for the instant and rolled back alone. The one
    /// observable difference is telemetry granularity: cohort ticks emit
    /// sweep spans but no per-reaction spans.
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn set_cohort(&mut self, width: Option<CohortWidth>) -> Result<(), PoolError> {
        self.cohort = width;
        self.push_config()
    }

    /// Selects the evaluation engine for every session, current and
    /// future (`None` keeps whatever each factory chose). Engines are a
    /// pure execution strategy — outputs and state digests are
    /// identical across all of them, which the differential batteries
    /// prove — so this is a performance knob: e.g.
    /// [`EngineMode::Sparse`] for wide pools of mostly-quiet sessions.
    /// Sessions whose circuit cannot run the requested engine (a cyclic
    /// circuit under `Sparse` or `Levelized`) resolve to the nearest
    /// capable one, exactly as [`Machine::set_engine`] does. A sparse
    /// session's incremental baseline is rebuilt on its first instant
    /// after the hop.
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn set_engine(&mut self, engine: Option<EngineMode>) -> Result<(), PoolError> {
        self.engine = engine;
        self.push_config()
    }

    /// Closes (drops) the given sessions, returning how many actually
    /// existed. Cohort lanes compact automatically — grouping is
    /// re-derived each tick, so survivors keep their digests and their
    /// lane-mates never notice. The flight recorder does not journal
    /// closes: a recording that straddles one will re-open every
    /// recorded session on replay, so close sessions before arming the
    /// recorder or after taking the journal.
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn close(&mut self, sessions: &[SessionId]) -> Result<usize, PoolError> {
        let mut per_shard: Vec<Vec<SessionId>> = vec![Vec::new(); self.shards.len()];
        for &id in sessions {
            per_shard[self.shard_of(id)].push(id);
        }
        let mut replies = Vec::new();
        for (shard, ids) in per_shard.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let (tx, rx) = channel();
            self.shards[shard]
                .tx
                .send(Cmd::Close(ids, tx))
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut closed = 0;
        for (shard, rx) in replies {
            closed += rx
                .recv()
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
        }
        for &id in sessions {
            self.roster.remove(&id);
            self.routes.remove(&id);
        }
        self.sessions -= closed;
        Ok(closed)
    }

    /// Drains the collected spans, ordered by start timestamp.
    pub fn take_spans(&mut self) -> Vec<SpanRecord> {
        let mut spans = std::mem::take(&mut self.spans);
        spans.sort_by_key(|s| (s.ts_us, s.id));
        spans
    }

    /// Arms the flight recorder: from now on every opened session and
    /// every tick's injected inputs are journaled, with digest
    /// checkpoints per `cfg`. Sessions already open are journaled
    /// immediately with their *current* digests as boot digests, so a
    /// recorder armed mid-run still yields a replayable journal of the
    /// rest of the run. `scenario` is free-form metadata the scenario
    /// owner needs to rebuild an equivalent factory (seed, shape…).
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died while digesting the open sessions.
    pub fn record(
        &mut self,
        cfg: RecorderConfig,
        scenario: BTreeMap<String, String>,
    ) -> Result<(), PoolError> {
        let mut recorder = Recorder::new(cfg, scenario);
        if self.sessions > 0 {
            let digests = self.digests()?;
            let ids: Vec<u64> = digests.keys().map(|id| id.0).collect();
            let boot: Vec<(u64, String)> =
                digests.into_iter().map(|(id, d)| (id.0, d)).collect();
            recorder.record_open(self.tick_ms, &ids, boot);
        }
        self.recorder = Some(recorder);
        Ok(())
    }

    /// The journal so far, cloned (recording continues).
    pub fn recording(&self) -> Option<Recording> {
        self.recorder.as_ref().map(Recorder::snapshot)
    }

    /// Disarms the recorder and returns its journal.
    pub fn take_recording(&mut self) -> Option<Recording> {
        self.recorder.take().map(Recorder::into_recording)
    }

    /// Re-executes a [`Recording`] on this pool — which must be fresh
    /// (nothing opened, no ticks) but may have *any* shard count: shard
    /// assignment never leaks into session semantics, so digests must
    /// match regardless. Opens the recorded sessions, injects each
    /// tick's journaled inputs, and (per `opts`) compares every digest
    /// checkpoint hash in the `[from, to]` window. The factory must
    /// rebuild the recorded scenario (same programs, same chaos seeds) —
    /// that is the caller's contract, keyed by [`Recording::scenario`].
    ///
    /// With [`ReplayOptions::from_snapshot`] set, the pool is first
    /// [`SessionPool::restore`]d from the checkpoint and only the
    /// journal *suffix* (ticks at or past the snapshot) is re-driven —
    /// crash recovery in O(instants since the checkpoint), and the only
    /// way to honor a nonzero `from`: without an anchor, skipping the
    /// prefix would silently re-execute it anyway, so that combination
    /// is an error.
    ///
    /// # Errors
    ///
    /// Fails on a non-replayable (ring-evicted) recording whose evicted
    /// prefix no snapshot covers, a nonzero `from` with no snapshot
    /// anchor, a non-fresh pool, a failed restore, or a dead shard.
    /// Digest mismatches are *reported*, not errors — see
    /// [`ReplayReport::ok`].
    pub fn replay(
        &mut self,
        rec: &Recording,
        opts: &ReplayOptions,
    ) -> Result<ReplayReport, PoolError> {
        let anchor = opts.from_snapshot.as_ref().map_or(0, |s| s.ticks);
        if let Some(snap) = &opts.from_snapshot {
            // The checkpoint must cover everything the ring buffer
            // evicted: evictions below the anchor are skipped anyway,
            // evictions above it are unrecoverable.
            let first_kept = rec.ticks.front().map_or(u64::MAX, |t| t.tick);
            if rec.dropped > 0 && anchor < first_kept {
                return Err(PoolError(format!(
                    "recording ticks below {first_kept} were evicted by the ring buffer \
                     and the snapshot only covers up to tick {anchor}"
                )));
            }
            self.restore(snap)?; // includes the fresh-pool check
        } else {
            if opts.from > 0 {
                return Err(PoolError(format!(
                    "replay from tick {} without a snapshot anchor would re-execute \
                     instants 0..{} from scratch anyway; anchor it with \
                     ReplayOptions::from_snapshot (CLI: --snapshot FILE) or use from = 0",
                    opts.from, opts.from
                )));
            }
            if !rec.replayable() {
                return Err(PoolError(format!(
                    "recording is not replayable: {} tick(s) were evicted by the ring buffer",
                    rec.dropped
                )));
            }
            if self.sessions != 0 || self.ticks != 0 {
                return Err(PoolError(
                    "replay requires a fresh pool (sessions were opened or ticks ran)"
                        .to_owned(),
                ));
            }
            let ids: Vec<SessionId> = rec.sessions.iter().copied().map(SessionId).collect();
            self.open(&ids)?;
        }
        let mut report = ReplayReport::default();
        let from = opts.from.max(anchor);
        if opts.verify_digests && opts.from == 0 && opts.from_snapshot.is_none() {
            self.check_digests(u64::MAX, &rec.boot_digests, &mut report)?;
        }
        for t in &rec.ticks {
            if t.tick < anchor {
                continue;
            }
            if t.tick > opts.to {
                break;
            }
            for i in &t.inputs {
                self.inject(SessionId(i.session), &i.signal, i.value.clone());
            }
            self.tick()?;
            report.ticks += 1;
            if opts.verify_digests && t.tick >= from {
                if let Some(expected) = &t.digests {
                    self.check_digests(t.tick, expected, &mut report)?;
                }
            }
        }
        Ok(report)
    }

    /// Compares live digest hashes against recorded ones.
    fn check_digests(
        &self,
        tick: u64,
        expected: &[(u64, String)],
        report: &mut ReplayReport,
    ) -> Result<(), PoolError> {
        let actual = self.digests()?;
        for (id, want) in expected {
            report.checked += 1;
            let got = actual
                .get(&SessionId(*id))
                .map(|d| hiphop_runtime::flight::digest_hash(d))
                .unwrap_or_default();
            if got != *want {
                report.mismatches.push(DigestMismatch {
                    tick,
                    session: *id,
                    expected: want.clone(),
                    actual: got,
                });
            }
        }
        Ok(())
    }

    /// Buffers one input event for `session`, delivered at the next
    /// [`SessionPool::tick`]. Multiple injections for the same session
    /// land in the same reaction (one batched instant per tick).
    pub fn inject(&mut self, session: SessionId, signal: &str, value: Value) {
        self.pending.push((session, signal.to_owned(), value));
    }

    /// Sweeps every shard in parallel: each shard runs one reaction per
    /// session with the batched inputs, advances its virtual clock by
    /// `tick_ms`, and drains mailbox follow-ups. Returns the merged
    /// report, ordered by session id.
    ///
    /// # Errors
    ///
    /// Fails only if a shard thread died; per-session reaction errors
    /// are reported (and rolled back) in [`TickReport::faults`].
    pub fn tick(&mut self) -> Result<TickReport, PoolError> {
        // Journal the injected inputs before they are drained.
        let journal: Option<Vec<RecordedInput>> = self.recorder.as_ref().map(|_| {
            self.pending
                .iter()
                .map(|(id, signal, value)| RecordedInput {
                    session: id.0,
                    signal: signal.clone(),
                    value: value.clone(),
                })
                .collect()
        });
        let tick_ts = self
            .tracing
            .then(|| self.epoch.elapsed().as_micros() as u64);
        let mut per_shard: Vec<Vec<(SessionId, String, Value)>> =
            vec![Vec::new(); self.shards.len()];
        // Route through `shard_of`, not the raw hash: migrated sessions
        // receive their inputs on their adoptive shard.
        let pending = std::mem::take(&mut self.pending);
        for (id, signal, value) in pending {
            let shard = self.shard_of(id);
            per_shard[shard].push((id, signal, value));
        }
        let mut shard_ticks = Vec::new();
        if self.serial_sweep {
            // One shard at a time: each shard's wall-clock sweep time is
            // its isolated (CPU) time, so `critical_path_us` stays
            // honest even on an oversubscribed single-core host.
            for (shard, inputs) in per_shard.into_iter().enumerate() {
                let (tx, rx) = channel();
                self.shards[shard]
                    .tx
                    .send(Cmd::Tick { inputs, reply: tx })
                    .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
                shard_ticks.push(
                    rx.recv()
                        .map_err(|_| PoolError(format!("shard {shard} is gone")))?,
                );
            }
        } else {
            // Fan out first — every shard works concurrently — then
            // gather.
            let mut replies = Vec::new();
            for (shard, inputs) in per_shard.into_iter().enumerate() {
                let (tx, rx) = channel();
                self.shards[shard]
                    .tx
                    .send(Cmd::Tick { inputs, reply: tx })
                    .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
                replies.push((shard, rx));
            }
            for (shard, rx) in replies {
                shard_ticks.push(
                    rx.recv()
                        .map_err(|_| PoolError(format!("shard {shard} is gone")))?,
                );
            }
        }
        let mut report = TickReport { tick: self.ticks, ..TickReport::default() };
        let mut slowest = 0.0f64;
        let mut tick_spans: Vec<SpanRecord> = Vec::new();
        for st in shard_ticks {
            report.outputs.extend(st.outputs);
            report.faults.extend(st.faults);
            report.reactions += st.reactions;
            report.quarantined += st.quarantined;
            slowest = slowest.max(st.busy_us);
            tick_spans.extend(st.spans);
        }
        report.outputs.sort_by_key(|o| o.session);
        report.faults.sort_by_key(|f| f.session);
        report.critical_path_us = slowest;
        self.critical_path_us += slowest;
        let tick_no = self.ticks;
        self.ticks += 1;
        if let Some(ts_us) = tick_ts {
            // Pool tick span ids live below `1 << 40`, so they never
            // collide with shard-allocated ids.
            self.tick_span_seq += 1;
            let tick_id = self.tick_span_seq;
            for s in &mut tick_spans {
                if s.parent == 0 {
                    s.parent = tick_id;
                }
            }
            let end = self.epoch.elapsed().as_micros() as u64;
            tick_spans.push(SpanRecord {
                id: tick_id,
                parent: 0,
                name: format!("tick {tick_no}"),
                kind: SpanKind::Tick,
                shard: 0,
                ts_us,
                dur_us: (end - ts_us).max(1),
            });
            self.spans.append(&mut tick_spans);
        }
        if let Some(inputs) = journal {
            let digests = if self
                .recorder
                .as_ref()
                .is_some_and(|r| r.wants_checkpoint(tick_no))
            {
                Some(
                    self.digests()?
                        .into_iter()
                        .map(|(id, d)| (id.0, d))
                        .collect(),
                )
            } else {
                None
            };
            if let Some(r) = self.recorder.as_mut() {
                r.record_tick(tick_no, inputs, digests);
            }
        }
        Ok(report)
    }

    /// State digests of every live session across the pool, for
    /// isolation assertions.
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn digests(&self) -> Result<BTreeMap<SessionId, String>, PoolError> {
        let mut replies = Vec::new();
        for (shard, h) in self.shards.iter().enumerate() {
            let (tx, rx) = channel();
            h.tx.send(Cmd::Digests(tx))
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut out = BTreeMap::new();
        for (shard, rx) in replies {
            for (id, digest) in rx
                .recv()
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?
            {
                out.insert(id, digest);
            }
        }
        Ok(out)
    }

    /// Pool-wide metrics roll-up (render with
    /// [`hiphop_runtime::Metrics::render_pool`]).
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn metrics(&self) -> Result<PoolMetrics, PoolError> {
        let mut replies = Vec::new();
        for (shard, h) in self.shards.iter().enumerate() {
            let (tx, rx) = channel();
            h.tx.send(Cmd::Metrics(tx))
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut rollups = Vec::new();
        for (shard, rx) in replies {
            rollups.push(
                rx.recv()
                    .map_err(|_| PoolError(format!("shard {shard} is gone")))?,
            );
        }
        rollups.sort_by_key(|r| r.shard);
        Ok(PoolMetrics::from_shards(
            rollups,
            self.critical_path_us,
            self.ticks,
        ))
    }

    // -----------------------------------------------------------------
    // Durability: whole-pool checkpoints, restore, live migration.

    /// Checkpoints the whole pool into one versioned
    /// [`PoolSnapshot`]: every session's machine state planes (registers,
    /// valued-signal environment, async instances, chaos RNG position)
    /// plus its live supervision runs, each stamped with its digest
    /// hash. Non-destructive — sessions keep running. Serialize with
    /// [`PoolSnapshot::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Fails if a shard thread died.
    pub fn snapshot(&self) -> Result<PoolSnapshot, PoolError> {
        let mut replies = Vec::new();
        for (shard, h) in self.shards.iter().enumerate() {
            let (tx, rx) = channel();
            h.tx.send(Cmd::Snapshot(tx))
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut sessions = Vec::new();
        for (shard, rx) in replies {
            sessions.extend(
                rx.recv()
                    .map_err(|_| PoolError(format!("shard {shard} is gone")))?,
            );
        }
        sessions.sort_by_key(|s| s.session);
        Ok(PoolSnapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            ticks: self.ticks,
            tick_ms: self.tick_ms,
            sessions,
        })
    }

    /// Rebuilds a checkpointed pool onto *this* pool — which must be
    /// fresh (nothing opened, no ticks ran) but may have **any** shard
    /// count: shard assignment never leaks into session semantics, so
    /// sessions simply hash-route onto the new topology. Each session is
    /// factory-built (no boot reaction), its state overwritten from the
    /// snapshot, its supervised activities re-adopted with their exact
    /// attempt/epoch/backoff-RNG state, and its digest verified against
    /// the hash recorded at capture time. Shard clocks fast-forward to
    /// the snapshot's virtual time.
    ///
    /// # Errors
    ///
    /// Fails on a format-version skew, a non-fresh pool, a `tick_ms`
    /// mismatch, any structural-hash or digest mismatch, or a dead
    /// shard.
    pub fn restore(&mut self, snap: &PoolSnapshot) -> Result<(), PoolError> {
        if snap.version != SNAPSHOT_FORMAT_VERSION {
            return Err(PoolError(format!(
                "snapshot format v{} is not v{SNAPSHOT_FORMAT_VERSION}",
                snap.version
            )));
        }
        if self.sessions != 0 || self.ticks != 0 {
            return Err(PoolError(
                "restore requires a fresh pool (sessions were opened or ticks ran)".to_owned(),
            ));
        }
        if self.tick_ms != snap.tick_ms {
            return Err(PoolError(format!(
                "tick_ms mismatch: this pool ticks every {} ms but the snapshot was \
                 taken at {} ms per tick",
                self.tick_ms, snap.tick_ms
            )));
        }
        let mut per_shard: Vec<Vec<SessionSnapshot>> = vec![Vec::new(); self.shards.len()];
        for s in &snap.sessions {
            per_shard[self.shard_of(SessionId(s.session))].push(s.clone());
        }
        let now_ms = snap.ticks * self.tick_ms;
        let mut replies = Vec::new();
        // Every shard gets a Restore — an empty one still fast-forwards
        // its clock, keeping the lockstep virtual time migrations rely
        // on.
        for (shard, sessions) in per_shard.into_iter().enumerate() {
            let (tx, rx) = channel();
            self.shards[shard]
                .tx
                .send(Cmd::Restore {
                    now_ms,
                    sessions,
                    reply: tx,
                })
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
            replies.push((shard, rx));
        }
        let mut restored = 0;
        for (shard, rx) in replies {
            restored += rx
                .recv()
                .map_err(|_| PoolError(format!("shard {shard} is gone")))?
                .map_err(PoolError)?;
        }
        self.sessions = restored;
        self.ticks = snap.ticks;
        self.roster = snap
            .sessions
            .iter()
            .map(|s| SessionId(s.session))
            .collect();
        Ok(())
    }

    /// Live-migrates `session` to `shard`: the source shard serializes
    /// the session and tears down its local supervision runs (timers
    /// cleared, cancel hooks run), the target rebuilds it — state
    /// planes, chaos RNG, mid-retry backoff state and all — verifies
    /// its digest, and future inputs route to the new home. Bytes move;
    /// machines never do. Migrating a session to its current shard is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Fails on an unknown session or shard, a dead shard, or a digest
    /// mismatch on the target.
    pub fn migrate(&mut self, session: SessionId, shard: usize) -> Result<(), PoolError> {
        if shard >= self.shards.len() {
            return Err(PoolError(format!(
                "no shard {shard} (pool has {})",
                self.shards.len()
            )));
        }
        if !self.roster.contains(&session) {
            return Err(PoolError(format!("{session}: no such session")));
        }
        let from = self.shard_of(session);
        if from == shard {
            return Ok(());
        }
        let (tx, rx) = channel();
        self.shards[from]
            .tx
            .send(Cmd::Extract(session, tx))
            .map_err(|_| PoolError(format!("shard {from} is gone")))?;
        let snap = rx
            .recv()
            .map_err(|_| PoolError(format!("shard {from} is gone")))?
            .map_err(PoolError)?;
        let (tx, rx) = channel();
        self.shards[shard]
            .tx
            .send(Cmd::Adopt(snap, tx))
            .map_err(|_| PoolError(format!("shard {shard} is gone")))?;
        rx.recv()
            .map_err(|_| PoolError(format!("shard {shard} is gone")))?
            .map_err(|e| PoolError(format!("migrating {session} to shard {shard}: {e}")))?;
        self.routes.insert(session, shard);
        Ok(())
    }

    /// Applies one rebalancing round between ticks: plans migrations
    /// with `rb` over the pool's current [`PoolMetrics`] and applies
    /// them. Returns the applied moves (empty when the pool is already
    /// balanced).
    ///
    /// # Errors
    ///
    /// Fails if metrics collection or a migration fails.
    pub fn rebalance(
        &mut self,
        rb: &Rebalancer,
    ) -> Result<Vec<(SessionId, usize)>, PoolError> {
        let metrics = self.metrics()?;
        let plan = rb.plan(self, &metrics);
        for &(id, shard) in &plan {
            self.migrate(id, shard)?;
        }
        Ok(plan)
    }
}

/// Tuning knobs for the [`Rebalancer`].
#[derive(Debug, Clone)]
pub struct RebalancerConfig {
    /// Most migrations one [`SessionPool::rebalance`] round applies.
    pub max_moves: usize,
    /// Skew trigger: move sessions only while the busiest shard's
    /// estimated load exceeds `threshold ×` the idlest shard's.
    pub threshold: f64,
}

impl Default for RebalancerConfig {
    fn default() -> RebalancerConfig {
        RebalancerConfig {
            max_moves: 4,
            threshold: 1.5,
        }
    }
}

/// Plans live migrations off skewed shards. Load is estimated per shard
/// as *live sessions × mean observed reaction time* (µs, from the
/// shard's telemetry samples; 1 µs per session before any samples
/// land), so a shard whose sessions run hot sheds work even when raw
/// session counts look even.
#[derive(Debug, Clone, Default)]
pub struct Rebalancer {
    cfg: RebalancerConfig,
}

impl Rebalancer {
    /// A rebalancer with the given knobs.
    pub fn new(cfg: RebalancerConfig) -> Rebalancer {
        Rebalancer { cfg }
    }

    /// Plans (but does not apply) migrations: repeatedly moves the
    /// highest-id session off the busiest shard onto the idlest one
    /// while the skew trigger holds, up to the per-round move cap.
    /// Deterministic in the metrics and roster.
    pub fn plan(&self, pool: &SessionPool, metrics: &PoolMetrics) -> Vec<(SessionId, usize)> {
        if metrics.per_shard.len() < 2 {
            return Vec::new();
        }
        let mut donors: Vec<Vec<SessionId>> = (0..metrics.per_shard.len())
            .map(|s| pool.sessions_on(s))
            .collect();
        let mut loads: Vec<f64> = metrics
            .per_shard
            .iter()
            .map(|s| {
                let mean = if s.samples_us.is_empty() {
                    1.0
                } else {
                    s.samples_us.iter().sum::<f64>() / s.samples_us.len() as f64
                };
                s.sessions as f64 * mean.max(1e-3)
            })
            .collect();
        // Per-session cost estimate per donor shard, for updating the
        // load model as planned moves accumulate.
        let per_session: Vec<f64> = loads
            .iter()
            .zip(&donors)
            .map(|(l, d)| if d.is_empty() { 0.0 } else { l / d.len() as f64 })
            .collect();
        let mut moves = Vec::new();
        for _ in 0..self.cfg.max_moves {
            let mut hi = 0usize;
            let mut lo = 0usize;
            for i in 1..loads.len() {
                if loads[i] > loads[hi] {
                    hi = i;
                }
                if loads[i] < loads[lo] {
                    lo = i;
                }
            }
            if hi == lo
                || donors[hi].len() <= 1
                || loads[hi] <= self.cfg.threshold * loads[lo].max(1e-9)
            {
                break;
            }
            let Some(id) = donors[hi].pop() else { break };
            moves.push((id, lo));
            loads[hi] -= per_session[hi];
            loads[lo] += per_session[hi];
            donors[lo].push(id);
        }
        moves
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        for h in &self.shards {
            let _ = h.tx.send(Cmd::Shutdown);
        }
        for h in &mut self.shards {
            if let Some(join) = h.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("shards", &self.shards.len())
            .field("sessions", &self.sessions)
            .field("ticks", &self.ticks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiphop_compiler::compile_module;
    use hiphop_core::prelude::*;

    /// A per-session counter program: each `inc` increments `count`
    /// (emitted every instant); emits `big` once count passes `limit`.
    fn counter_module() -> Module {
        Module::new("Counter")
            .input(SignalDecl::new("inc", Direction::In))
            .output(
                SignalDecl::new("count", Direction::Out)
                    .with_init(0i64)
                    .with_combine(Combine::Plus),
            )
            .body(Stmt::loop_(Stmt::seq([
                Stmt::if_(
                    Expr::now("inc"),
                    Stmt::emit_val("count", Expr::nowval("inc")),
                ),
                Stmt::Pause,
            ])))
    }

    fn counter_factory(id: SessionId) -> Result<Machine, String> {
        let c = compile_module(&counter_module(), &ModuleRegistry::new())
            .map_err(|e| e.to_string())?;
        let mut m = Machine::new(c.circuit).map_err(|e| e.to_string())?;
        // Stagger engines across sessions: the pool supports per-session
        // engine selection.
        let _ = m.set_engine(if id.0.is_multiple_of(2) {
            hiphop_runtime::EngineMode::Levelized
        } else {
            hiphop_runtime::EngineMode::Constructive
        });
        Ok(m)
    }

    fn count_of(outputs: &SessionOutputs) -> f64 {
        outputs
            .outputs
            .iter()
            .rev()
            .find(|o| &*o.name == "count")
            .map(|o| match &o.value {
                Value::Num(n) => *n,
                other => panic!("count is numeric, got {other:?}"),
            })
            .expect("count output present")
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let pool = SessionPool::new(4, 10, counter_factory);
        let mut per_shard = [0usize; 4];
        for id in 0..256 {
            let a = pool.shard_of(SessionId(id));
            assert_eq!(a, pool.shard_of(SessionId(id)), "routing is stable");
            per_shard[a] += 1;
        }
        for (shard, n) in per_shard.iter().enumerate() {
            assert!(
                (32..=96).contains(n),
                "shard {shard} got {n}/256 sessions — routing is badly skewed"
            );
        }
    }

    #[test]
    fn inject_reaches_exactly_the_target_session() {
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(6).expect("open");
        pool.inject(SessionId(2), "inc", Value::from(5i64));
        pool.inject(SessionId(4), "inc", Value::from(7i64));
        let report = pool.tick().expect("tick");
        assert_eq!(report.outputs.len(), 6, "every session reacts each tick");
        for o in &report.outputs {
            let expect = match o.session.0 {
                2 => 5.0,
                4 => 7.0,
                _ => 0.0,
            };
            assert_eq!(count_of(o), expect, "{}", o.session);
        }
        assert!(report.faults.is_empty());
        assert_eq!(report.reactions, 6);
    }

    #[test]
    fn batched_inputs_land_in_one_instant() {
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.open_many(1).expect("open");
        // Two injections for the same session in the same tick land in
        // the same instant. For a plain (non-combined) input signal the
        // later staging wins, exactly as two `Machine::set_input` calls
        // before one `react` — the pool adds no semantics of its own.
        pool.inject(SessionId(0), "inc", Value::from(3i64));
        pool.inject(SessionId(0), "inc", Value::from(4i64));
        let report = pool.tick().expect("tick");
        assert_eq!(count_of(&report.outputs[0]), 4.0);
        // And the next tick is a fresh instant.
        pool.inject(SessionId(0), "inc", Value::from(2i64));
        let report = pool.tick().expect("tick");
        assert_eq!(count_of(&report.outputs[0]), 2.0);
    }

    #[test]
    fn pool_matches_a_single_machine_exactly() {
        // Differential: the pool is just plumbing — a session's output
        // trace must equal the same machine driven directly.
        let mut pool = SessionPool::new(4, 10, counter_factory);
        pool.open_many(8).expect("open");
        let c = compile_module(&counter_module(), &ModuleRegistry::new()).expect("compiles");
        let mut solo = Machine::new(c.circuit).expect("finalized");
        solo.react().expect("boot");
        for step in 0..20u64 {
            let target = SessionId(step % 8);
            pool.inject(target, "inc", Value::from(1i64));
            let report = pool.tick().expect("tick");
            let solo_r = if target.0 == 3 {
                solo.react_with(&[("inc", Value::from(1i64))]).expect("react")
            } else {
                solo.react_with(&[]).expect("react")
            };
            let pooled = report.session(SessionId(3)).expect("session 3 reacted");
            let solo_outputs: Vec<String> = solo_r
                .outputs
                .iter()
                .map(|o| format!("{}={}:{}", o.name, o.present as u8, o.value))
                .collect();
            let pool_outputs: Vec<String> = pooled
                .outputs
                .iter()
                .map(|o| format!("{}={}:{}", o.name, o.present as u8, o.value))
                .collect();
            assert_eq!(pool_outputs, solo_outputs, "step {step}");
        }
    }

    #[test]
    fn boot_outputs_are_returned_by_open() {
        let mut pool = SessionPool::new(2, 10, counter_factory);
        let booted = pool.open_many(3).expect("open");
        assert_eq!(booted.outputs.len(), 3);
        assert!(booted.faults.is_empty());
        assert_eq!(booted.reactions, 3);
        for (i, o) in booted.outputs.iter().enumerate() {
            assert_eq!(o.session, SessionId(i as u64));
            assert_eq!(count_of(o), 0.0, "boot instant shows the init value");
        }
    }

    #[test]
    fn a_faulting_session_rolls_back_without_perturbing_shard_mates() {
        let factory = |id: SessionId| -> Result<Machine, String> {
            let mut m = counter_factory(id)?;
            if id.0 == 1 {
                // Session 1 panics on (almost) every action.
                m.set_chaos(42, 0.95);
            }
            Ok(m)
        };
        let mut pool = SessionPool::new(1, 10, factory);
        pool.open_many(4).expect("open: boot has no action faults for inc-less instants");
        let mut faults = 0;
        for step in 0..30u64 {
            for id in 0..4 {
                pool.inject(SessionId(id), "inc", Value::from(1i64));
            }
            let report = pool.tick().expect("tick");
            faults += report.faults.len();
            for f in &report.faults {
                assert_eq!(f.session, SessionId(1), "only the chaotic session faults");
                assert!(!f.quarantined, "rollback keeps it serviceable");
            }
            // Healthy shard-mates always commit their reaction.
            let _ = step;
            for id in [0u64, 2, 3] {
                let o = report.session(SessionId(id)).expect("healthy session reacted");
                assert_eq!(count_of(o), 1.0, "session {id} unperturbed");
            }
        }
        assert!(faults > 0, "the chaotic session must fault at 95%");
        let metrics = pool.metrics().expect("metrics");
        assert_eq!(metrics.rollbacks as usize, faults);
        assert_eq!(metrics.per_shard[0].quarantined, 0);
    }

    #[test]
    fn metrics_roll_up_across_shards() {
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(9).expect("open");
        for _ in 0..5 {
            for id in 0..9 {
                pool.inject(SessionId(id), "inc", Value::from(1i64));
            }
            pool.tick().expect("tick");
        }
        let m = pool.metrics().expect("metrics");
        assert_eq!(m.shards, 3);
        assert_eq!(m.sessions(), 9);
        // 9 boots + 9 sessions × 5 ticks.
        assert_eq!(m.reactions, 9 + 45);
        assert_eq!(m.ticks, 5);
        assert!(m.critical_path_us > 0.0);
        // busy_us sums pure reaction compute (from the telemetry
        // sinks); critical_path_us is wall-clock shard-sweep time, so
        // neither bounds the other on small workloads.
        assert!(m.busy_us > 0.0);
        assert_eq!(
            m.reactions,
            m.per_shard.iter().map(|s| s.metrics.reactions).sum::<usize>()
        );
        let table = hiphop_runtime::Metrics::render_pool(&m);
        assert!(
            table.contains("9 live session(s), 0 quarantined, over 3 shard(s)"),
            "{table}"
        );
        let json = m.to_json();
        assert!(json.contains("\"reactions\":54"), "{json}");
        assert!(json.contains("\"per_shard\":["), "{json}");
    }

    #[test]
    fn shard_clocks_advance_in_virtual_time() {
        let mut pool = SessionPool::new(2, 250, counter_factory);
        pool.open_many(2).expect("open");
        for _ in 0..4 {
            pool.tick().expect("tick");
        }
        assert_eq!(pool.now(), 1000);
        assert_eq!(pool.ticks(), 4);
    }

    #[test]
    fn serial_sweep_is_observably_identical_to_parallel() {
        let run = |serial: bool| {
            let mut pool = SessionPool::new(3, 10, counter_factory);
            pool.set_serial_sweep(serial);
            pool.open_many(6).expect("open");
            let mut trace = Vec::new();
            for step in 0..5u64 {
                for id in 0..6 {
                    if (id + step).is_multiple_of(2) {
                        pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                    }
                }
                let r = pool.tick().expect("tick");
                trace.push(
                    r.outputs
                        .iter()
                        .map(|o| (o.session, count_of(o)))
                        .collect::<Vec<_>>(),
                );
            }
            trace
        };
        assert_eq!(run(true), run(false), "sweep order is unobservable");
    }

    #[test]
    fn cohort_mode_is_digest_identical_to_scalar_sweeps() {
        // The pool's counter factory staggers engines (even sessions
        // levelized, odd constructive), so cohort mode exercises the
        // mixed path: eligible sessions form cohorts, the rest fall back
        // to scalar sweeps — and every output and digest must match a
        // scalar-mode pool exactly.
        let run = |cohort: Option<CohortWidth>| {
            let mut pool = SessionPool::new(2, 10, counter_factory);
            pool.set_cohort(cohort).expect("config");
            pool.open_many(40).expect("open");
            let mut trace = Vec::new();
            for step in 0..6u64 {
                for id in 0..40 {
                    if (id + step) % 3 == 0 {
                        pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                    }
                }
                let r = pool.tick().expect("tick");
                assert!(r.faults.is_empty());
                trace.push((
                    r.outputs
                        .iter()
                        .map(|o| (o.session, count_of(o)))
                        .collect::<Vec<_>>(),
                    pool.digests().expect("digests"),
                ));
            }
            trace
        };
        let scalar = run(None);
        assert_eq!(scalar, run(Some(CohortWidth::U64)), "u64 lanes diverged");
        assert_eq!(scalar, run(Some(CohortWidth::Wide)), "wide lanes diverged");
    }

    #[test]
    fn engine_override_is_digest_identical_and_applies_mid_run() {
        // The engine knob is a pure execution strategy: whatever the
        // factory picked (staggered levelized/constructive here), an
        // override to any engine reproduces the same outputs and
        // digests tick for tick.
        let run = |engine: Option<EngineMode>| {
            let mut pool = SessionPool::new(2, 10, counter_factory);
            pool.set_engine(engine).expect("config");
            pool.open_many(12).expect("open");
            let mut trace = Vec::new();
            for step in 0..6u64 {
                for id in 0..12 {
                    if (id + step) % 3 == 0 {
                        pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                    }
                }
                let r = pool.tick().expect("tick");
                assert!(r.faults.is_empty());
                trace.push((
                    r.outputs
                        .iter()
                        .map(|o| (o.session, count_of(o)))
                        .collect::<Vec<_>>(),
                    pool.digests().expect("digests"),
                ));
            }
            trace
        };
        let baseline = run(None);
        for mode in [
            EngineMode::Levelized,
            EngineMode::Constructive,
            EngineMode::Naive,
            EngineMode::Hybrid,
            EngineMode::Sparse,
        ] {
            assert_eq!(baseline, run(Some(mode)), "{mode} override diverged");
        }

        // A mid-run hop reaches already-open sessions: three staggered
        // ticks, then everyone switches to sparse (whose baselines are
        // rebuilt on the next instant), and the trace keeps matching.
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.open_many(12).expect("open");
        let mut trace = Vec::new();
        for step in 0..6u64 {
            if step == 3 {
                pool.set_engine(Some(EngineMode::Sparse)).expect("config");
            }
            for id in 0..12 {
                if (id + step) % 3 == 0 {
                    pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                }
            }
            let r = pool.tick().expect("tick");
            assert!(r.faults.is_empty());
            trace.push((
                r.outputs
                    .iter()
                    .map(|o| (o.session, count_of(o)))
                    .collect::<Vec<_>>(),
                pool.digests().expect("digests"),
            ));
        }
        assert_eq!(baseline, trace, "the mid-run engine hop diverged");
    }

    #[test]
    fn close_compacts_cohort_lanes_without_disturbing_survivors() {
        let run = |cohort: Option<CohortWidth>| {
            let mut pool = SessionPool::new(2, 10, counter_factory);
            pool.set_cohort(cohort).expect("config");
            pool.open_many(33).expect("open");
            let mut digests = Vec::new();
            for step in 0..8u64 {
                if step == 3 {
                    // Mid-run close: survivors shift into fresh lanes.
                    let victims = [SessionId(2), SessionId(17), SessionId(32)];
                    let before = pool.digests().expect("digests");
                    assert_eq!(pool.close(&victims).expect("close"), 3);
                    let after = pool.digests().expect("digests");
                    for (id, d) in &after {
                        assert_eq!(&before[id], d, "{id}: close must not touch survivors");
                    }
                    for v in victims {
                        assert!(!after.contains_key(&v), "{v} still live after close");
                    }
                    // Closing an already-closed session is a no-op.
                    assert_eq!(pool.close(&[SessionId(17)]).expect("close"), 0);
                }
                for id in 0..33 {
                    if (id + step).is_multiple_of(2) {
                        pool.inject(SessionId(id), "inc", Value::from(1i64));
                    }
                }
                pool.tick().expect("tick");
                digests.push(pool.digests().expect("digests"));
            }
            assert_eq!(pool.sessions(), 30);
            digests
        };
        let scalar = run(None);
        assert_eq!(scalar, run(Some(CohortWidth::U64)), "u64 lanes diverged");
        assert_eq!(scalar, run(Some(CohortWidth::Wide)), "wide lanes diverged");
    }

    #[test]
    fn a_pool_closed_down_to_zero_sessions_still_ticks() {
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.set_cohort(Some(CohortWidth::U64)).expect("config");
        pool.open_many(5).expect("open");
        pool.tick().expect("tick");
        let all: Vec<SessionId> = (0..5).map(SessionId).collect();
        assert_eq!(pool.close(&all).expect("close"), 5);
        assert_eq!(pool.sessions(), 0);
        let r = pool.tick().expect("an empty pool ticks without sessions");
        assert!(r.outputs.is_empty());
        assert!(r.faults.is_empty());
    }

    #[test]
    fn snapshot_restores_digest_identically_onto_fewer_shards() {
        let mut pool = SessionPool::new(4, 10, counter_factory);
        pool.open_many(24).expect("open");
        for step in 0..5u64 {
            for id in 0..24 {
                if (id + step) % 3 == 0 {
                    pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                }
            }
            pool.tick().expect("tick");
        }
        let snap = pool.snapshot().expect("snapshot");
        let want = pool.digests().expect("digests");
        // Through the wire format, onto a *different* shard count.
        let wire = snap.to_jsonl();
        let snap = PoolSnapshot::from_jsonl(&wire).expect("parse");
        let mut restored = SessionPool::new(3, 10, counter_factory);
        restored.restore(&snap).expect("restore");
        assert_eq!(restored.sessions(), 24);
        assert_eq!(restored.ticks(), 5);
        assert_eq!(restored.digests().expect("digests"), want);
        // And the restored pool keeps running in lockstep with the
        // undisturbed source.
        for step in 0..4i64 {
            for id in 0..24 {
                pool.inject(SessionId(id), "inc", Value::from(step));
                restored.inject(SessionId(id), "inc", Value::from(step));
            }
            pool.tick().expect("tick");
            restored.tick().expect("tick");
        }
        assert_eq!(
            pool.digests().expect("digests"),
            restored.digests().expect("digests"),
            "restored pool diverged from the survivor"
        );
    }

    #[test]
    fn migration_moves_state_not_machines() {
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(9).expect("open");
        for _ in 0..3 {
            for id in 0..9 {
                pool.inject(SessionId(id), "inc", Value::from(1i64));
            }
            pool.tick().expect("tick");
        }
        let before = pool.digests().expect("digests");
        let victim = SessionId(5);
        let home = pool.shard_of(victim);
        let target = (home + 1) % 3;
        pool.migrate(victim, target).expect("migrate");
        assert_eq!(pool.shard_of(victim), target);
        assert!(pool.sessions_on(target).contains(&victim));
        assert_eq!(
            pool.digests().expect("digests"),
            before,
            "migration must not disturb any session's state"
        );
        // Inputs keep reaching the migrated session on its new shard.
        pool.inject(victim, "inc", Value::from(10i64));
        let r = pool.tick().expect("tick");
        assert_eq!(count_of(r.session(victim).expect("reacted")), 10.0);
    }

    #[test]
    fn rebalancer_drains_a_skewed_shard() {
        // Route-override every session onto shard 0, then let the
        // rebalancer spread them out.
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(12).expect("open");
        for id in 0..12 {
            pool.migrate(SessionId(id), 0).expect("migrate");
        }
        for _ in 0..3 {
            for id in 0..12 {
                pool.inject(SessionId(id), "inc", Value::from(1i64));
            }
            pool.tick().expect("tick");
        }
        let before = pool.digests().expect("digests");
        assert_eq!(pool.sessions_on(0).len(), 12);
        let rb = Rebalancer::new(RebalancerConfig {
            max_moves: 4,
            threshold: 1.2,
        });
        let mut moved = 0;
        for _ in 0..6 {
            moved += pool.rebalance(&rb).expect("rebalance").len();
            pool.tick().expect("tick");
        }
        assert!(moved >= 4, "rebalancer moved only {moved} sessions");
        assert!(
            pool.sessions_on(0).len() <= 8,
            "shard 0 still holds {} of 12 sessions",
            pool.sessions_on(0).len()
        );
        // Zero digest divergence: a shadow pool that ran the same
        // inputs without any rebalancing must agree tick for tick.
        let mut shadow = SessionPool::new(3, 10, counter_factory);
        shadow.open_many(12).expect("open");
        for _ in 0..3 {
            for id in 0..12 {
                shadow.inject(SessionId(id), "inc", Value::from(1i64));
            }
            shadow.tick().expect("tick");
        }
        assert_eq!(shadow.digests().expect("digests"), before);
        for _ in 0..6 {
            shadow.tick().expect("tick");
        }
        assert_eq!(
            shadow.digests().expect("digests"),
            pool.digests().expect("digests"),
            "rebalancing changed observable state"
        );
    }

    #[test]
    fn replay_from_nonzero_without_snapshot_is_a_clear_error() {
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.record(RecorderConfig::default(), BTreeMap::new())
            .expect("record");
        pool.open_many(2).expect("open");
        for _ in 0..4 {
            pool.tick().expect("tick");
        }
        let rec = pool.take_recording().expect("recording");
        let mut fresh = SessionPool::new(2, 10, counter_factory);
        let opts = ReplayOptions {
            from: 2,
            ..ReplayOptions::default()
        };
        let err = fresh.replay(&rec, &opts).expect_err("must refuse");
        assert!(err.to_string().contains("snapshot anchor"), "{err}");
    }

    #[test]
    fn snapshot_anchored_replay_drives_only_the_journal_suffix() {
        let drive = |pool: &mut SessionPool, step: u64| {
            for id in 0..6 {
                if (id + step).is_multiple_of(2) {
                    pool.inject(SessionId(id), "inc", Value::from(step as i64 + 1));
                }
            }
            pool.tick().expect("tick");
        };
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.record(
            RecorderConfig {
                checkpoint_every: 1,
                ..RecorderConfig::default()
            },
            BTreeMap::new(),
        )
        .expect("record");
        pool.open_many(6).expect("open");
        let mut checkpoint = None;
        for step in 0..8u64 {
            if step == 5 {
                checkpoint = Some(pool.snapshot().expect("snapshot"));
            }
            drive(&mut pool, step);
        }
        let rec = pool.take_recording().expect("recording");
        let final_digests = pool.digests().expect("digests");
        // Anchored replay re-drives only ticks 5..8 — on a different
        // shard count — and must land on the same digests.
        let mut recovered = SessionPool::new(3, 10, counter_factory);
        let opts = ReplayOptions {
            from_snapshot: checkpoint,
            ..ReplayOptions::default()
        };
        let report = recovered.replay(&rec, &opts).expect("replay");
        assert_eq!(report.ticks, 3, "only the journal suffix runs");
        assert!(report.ok(), "{:?}", report.mismatches);
        assert!(report.checked > 0, "checkpoints were verified");
        assert_eq!(recovered.digests().expect("digests"), final_digests);
    }

    #[test]
    fn factory_errors_surface_per_session() {
        let factory = |id: SessionId| -> Result<Machine, String> {
            if id.0 == 7 {
                Err("no such score".to_owned())
            } else {
                counter_factory(id)
            }
        };
        let mut pool = SessionPool::new(2, 10, factory);
        let err = pool.open_many(8).expect_err("session 7 fails to build");
        assert!(err.to_string().contains("no such score"), "{err}");
    }

    #[test]
    fn restore_refuses_mismatched_clocks_versions_and_used_pools() {
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.open_many(3).expect("open");
        pool.tick().expect("tick");
        let mut snap = pool.snapshot().expect("snapshot");

        // tick_ms is part of the contract: remaining-ms timer encoding
        // in activity snapshots assumes the restored clock ticks at the
        // recorded rate.
        let mut wrong_clock = SessionPool::new(2, 25, counter_factory);
        let err = wrong_clock.restore(&snap).expect_err("clock mismatch");
        assert!(err.to_string().contains("tick_ms mismatch"), "{err}");

        // A used pool refuses: restore is recovery, not merging.
        let err = pool.restore(&snap).expect_err("pool is not fresh");
        assert!(err.to_string().contains("fresh pool"), "{err}");

        // A future wire format refuses before touching any shard.
        snap.version += 1;
        let mut fresh = SessionPool::new(2, 10, counter_factory);
        let err = fresh.restore(&snap).expect_err("future format");
        assert!(err.to_string().contains("format"), "{err}");
    }

    #[test]
    fn restore_refuses_a_foreign_factory() {
        // The structural-hash guard: a snapshot of the counter program
        // must not load into machines a different factory builds.
        let mut pool = SessionPool::new(2, 10, counter_factory);
        pool.open_many(2).expect("open");
        pool.tick().expect("tick");
        let snap = pool.snapshot().expect("snapshot");

        let other_factory = |_id: SessionId| -> Result<Machine, String> {
            let module = Module::new("Other")
                .input(SignalDecl::new("go", Direction::In))
                .body(Stmt::loop_(Stmt::Pause));
            let c = compile_module(&module, &ModuleRegistry::new())
                .map_err(|e| e.to_string())?;
            Machine::new(c.circuit).map_err(|e| e.to_string())
        };
        let mut foreign = SessionPool::new(2, 10, other_factory);
        let err = foreign.restore(&snap).expect_err("struct hash must gate");
        assert!(err.to_string().contains("cannot load into"), "{err}");
    }

    #[test]
    fn migrate_rejects_unknown_sessions_and_shards() {
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(4).expect("open");
        let err = pool.migrate(SessionId(0), 9).expect_err("no shard 9");
        assert!(err.to_string().contains("no shard 9"), "{err}");
        let err = pool.migrate(SessionId(77), 1).expect_err("unknown session");
        assert!(err.to_string().contains("no such session"), "{err}");
        // Migrating home is a no-op, not an error.
        let home = pool.shard_of(SessionId(0));
        pool.migrate(SessionId(0), home).expect("no-op migration");
        assert_eq!(pool.shard_of(SessionId(0)), home);
    }

    #[test]
    fn rebalancer_leaves_a_balanced_pool_alone() {
        let mut pool = SessionPool::new(3, 10, counter_factory);
        pool.open_many(9).expect("open");
        for _ in 0..4 {
            pool.tick().expect("tick");
        }
        let rb = Rebalancer::new(RebalancerConfig::default());
        let moves = pool.rebalance(&rb).expect("rebalance");
        assert!(
            moves.len() <= RebalancerConfig::default().max_moves,
            "{moves:?}"
        );
        // A second round from the (now balanced) state plans nothing
        // beyond the threshold band.
        let again = pool.rebalance(&rb).expect("rebalance");
        let metrics = pool.metrics().expect("metrics");
        let spread: Vec<usize> = metrics.per_shard.iter().map(|s| s.sessions).collect();
        assert_eq!(spread.iter().sum::<usize>(), 9, "no session lost: {again:?}");
    }
}
