//! Supervised async activities: timeouts, bounded retries with capped
//! exponential backoff, panic isolation, and seeded fault injection.
//!
//! The paper's `async` statement bridges the synchronous core to an
//! untrusted asynchronous host world — and assumes the host behaves:
//! activities complete, never hang, never panic. The [`Supervisor`]
//! drops that assumption. Every activity launched through
//! [`supervised_async`] runs under an [`ActivityPolicy`]:
//!
//! - a **deadline** enforced with the event loop's virtual clock — an
//!   attempt that neither succeeds nor fails by its deadline is failed
//!   with a timeout;
//! - **bounded retries** with capped exponential backoff and
//!   deterministic jitter drawn from a per-activity PCG32 stream
//!   ([`hiphop_core::rng::Rng`]), so retry storms never synchronize and
//!   every schedule replays exactly under a fixed seed;
//! - **panic isolation**: the work function runs under
//!   [`hiphop_runtime::isolate::guarded`], so a panicking attempt
//!   becomes a failed attempt, not a torn-down event loop;
//! - **cleanup hooks** ([`Attempt::defer_cancel`]) with `finally`
//!   semantics, honoured on retry, timeout, preemption (`abort` killing
//!   the statement) and give-up alike.
//!
//! Outcomes re-enter the synchronous world as signals: success delivers
//! the value through the async statement's completion signal; exhausted
//! retries deliver an error object (`{error, attempts}`) through the
//! completion signal or, when [`SupervisedSpec::fail_signal`] names an
//! interface input, through a staged reaction on that signal. Every
//! supervision decision is also published as telemetry
//! ([`TraceEvent::ActivityRetry`], [`TraceEvent::ActivityTimeout`],
//! [`TraceEvent::ActivityPanic`]) to the machine's sinks via
//! [`Supervisor::attach_sinks`].
//!
//! [`ChaosPolicy`] arms seeded fault injection at the supervision
//! boundary: completions may be delayed, dropped, duplicated or turned
//! into failures, and work functions may panic — each drawn from one
//! PCG32 stream, so a `(seed, rate)` pair names a reproducible fault
//! schedule. The chaos differential tests drive the full matrix.

use crate::{EventLoop, TimerId};
use hiphop_core::ast::{AsyncHook, AsyncSpec, Stmt};
use hiphop_core::mailbox::AsyncHandle;
use hiphop_core::rng::Rng;
use hiphop_core::value::Value;
use hiphop_runtime::isolate::guarded;
use hiphop_runtime::snapshot::ActivitySnapshot;
use hiphop_runtime::telemetry::{SinkSet, SpanKind, SpanRecord, TraceEvent};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::{Rc, Weak};

/// Retry/timeout policy for one supervised activity.
#[derive(Debug, Clone)]
pub struct ActivityPolicy {
    /// Deadline per attempt in virtual ms; `None` disables the timeout.
    /// An activity whose completion is *dropped* (by chaos or a buggy
    /// host) can only recover through this deadline.
    pub timeout_ms: Option<u64>,
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base * 2^(k-1)`, capped below.
    pub backoff_base_ms: u64,
    /// Upper bound on the computed backoff.
    pub backoff_cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: the delay is scaled by a factor
    /// drawn uniformly from `1 ± jitter` (deterministic per activity).
    pub jitter: f64,
}

impl Default for ActivityPolicy {
    fn default() -> ActivityPolicy {
        ActivityPolicy {
            timeout_ms: None,
            max_retries: 0,
            backoff_base_ms: 100,
            backoff_cap_ms: 10_000,
            jitter: 0.1,
        }
    }
}

impl ActivityPolicy {
    /// Convenience: a policy with a per-attempt deadline.
    pub fn with_timeout(mut self, ms: u64) -> ActivityPolicy {
        self.timeout_ms = Some(ms);
        self
    }
    /// Convenience: a policy allowing `n` retries.
    pub fn with_retries(mut self, n: u32) -> ActivityPolicy {
        self.max_retries = n;
        self
    }
    /// Convenience: backoff base and cap in one call.
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> ActivityPolicy {
        self.backoff_base_ms = base_ms;
        self.backoff_cap_ms = cap_ms;
        self
    }
}

/// Static description of a supervised activity.
#[derive(Debug, Clone, Default)]
pub struct SupervisedSpec {
    /// Diagnostic name carried on every telemetry event.
    pub name: String,
    /// Completion signal of the underlying `async` statement; emitted
    /// with the success value (or, when `fail_signal` is `None`, with
    /// the `{error, attempts}` object on give-up).
    pub done_signal: Option<String>,
    /// When set, give-up stages a reaction with this *interface input*
    /// carrying the `{error, attempts}` object instead of completing
    /// the async statement; the statement stays selected until the
    /// program preempts it.
    pub fail_signal: Option<String>,
    /// The retry/timeout policy.
    pub policy: ActivityPolicy,
}

impl SupervisedSpec {
    /// A named spec with the default policy.
    pub fn new(name: impl Into<String>) -> SupervisedSpec {
        SupervisedSpec {
            name: name.into(),
            ..SupervisedSpec::default()
        }
    }
    /// Sets the completion signal.
    pub fn done(mut self, signal: impl Into<String>) -> SupervisedSpec {
        self.done_signal = Some(signal.into());
        self
    }
    /// Sets the failure signal.
    pub fn fail(mut self, signal: impl Into<String>) -> SupervisedSpec {
        self.fail_signal = Some(signal.into());
        self
    }
    /// Sets the policy.
    pub fn policy(mut self, policy: ActivityPolicy) -> SupervisedSpec {
        self.policy = policy;
        self
    }
}

/// Seeded fault injection at the supervision boundary (see the module
/// docs); `(seed, rate)` names a reproducible fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    /// PCG32 seed for the fault stream.
    pub seed: u64,
    /// Per-decision fault probability in `[0, 1]`.
    pub rate: f64,
    /// Upper bound on injected completion delays, virtual ms.
    pub max_delay_ms: u64,
    /// Whether work functions may be made to panic (exercises the
    /// panic-isolation path).
    pub panic_work: bool,
}

impl ChaosPolicy {
    /// A policy with the default delay bound (500 ms) and work panics
    /// enabled.
    pub fn new(seed: u64, rate: f64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            rate,
            max_delay_ms: 500,
            panic_work: true,
        }
    }
}

/// One drawn completion fault.
#[derive(Debug, Clone)]
enum Fault {
    Delay(u64),
    Drop,
    Duplicate,
    Fail,
}

#[derive(Debug)]
struct ChaosEngine {
    rng: Rng,
    policy: ChaosPolicy,
}

impl ChaosEngine {
    fn draw_completion_fault(&mut self) -> Option<Fault> {
        if !self.rng.gen_bool(self.policy.rate) {
            return None;
        }
        Some(match self.rng.gen_range(0u32..4) {
            0 => Fault::Delay(self.rng.gen_range(1u64..self.policy.max_delay_ms.max(2))),
            1 => Fault::Drop,
            2 => Fault::Duplicate,
            _ => Fault::Fail,
        })
    }

    fn draw_work_panic(&mut self) -> bool {
        self.policy.panic_work && self.rng.gen_bool(self.policy.rate)
    }
}

/// Monotonic counters over every activity the supervisor has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Activities launched (spawn hooks run).
    pub launched: u64,
    /// Activities that delivered a success value.
    pub completed: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Attempts that hit their deadline.
    pub timeouts: u64,
    /// Work-function panics caught.
    pub panics: u64,
    /// Activities that exhausted their retries.
    pub gave_up: u64,
    /// Activities preempted by the program (`abort` etc.).
    pub killed: u64,
    /// Chaos faults injected (completion faults and work panics).
    pub chaos_faults: u64,
}

type ActivityKey = (u32, u64);
type CancelHook = Box<dyn FnOnce(&mut EventLoop)>;
type WorkFn = Rc<dyn Fn(&mut Attempt<'_>)>;

struct ActivityRun {
    name: String,
    policy: ActivityPolicy,
    handle: AsyncHandle,
    fail_signal: Option<String>,
    work: WorkFn,
    /// Attempts started so far (1-based once running).
    attempt: u32,
    /// Virtual-clock start of the current attempt (ms), for the
    /// activity's span in the cross-shard trace.
    started_ms: u64,
    /// Bumped on every state transition; callbacks capture the epoch at
    /// scheduling time and anything stale is dropped — the supervisor's
    /// analogue of the machine's instance/generation check.
    epoch: u64,
    /// Per-activity jitter stream, seeded from the activity key.
    rng: Rng,
    timeout_timer: Option<TimerId>,
    retry_timer: Option<TimerId>,
    cancel_hooks: Vec<CancelHook>,
}

/// Supervises activities launched through [`supervised_async`] on one
/// event loop. Create with [`Supervisor::new`], share as `Rc`.
pub struct Supervisor {
    el: Rc<RefCell<EventLoop>>,
    activities: RefCell<HashMap<ActivityKey, ActivityRun>>,
    /// Static activity descriptions by name, registered by
    /// [`supervised_hooks`]. Adoption ([`Supervisor::adopt`]) rebuilds
    /// migrated/recovered activity runs from this registry — the work
    /// closures themselves cannot cross threads, so only their names
    /// travel in a snapshot.
    specs: RefCell<HashMap<String, (SupervisedSpec, WorkFn)>>,
    sinks: RefCell<SinkSet>,
    chaos: RefCell<Option<ChaosEngine>>,
    stats: RefCell<SupervisionStats>,
    /// Span id sequence for activity spans — allocated in `1 << 50 | n`
    /// so ids never collide with pool tick or shard span ids when the
    /// traces are merged.
    span_seq: std::cell::Cell<u64>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("activities", &self.activities.borrow().len())
            .field("stats", &*self.stats.borrow())
            .finish()
    }
}

/// Handed to the work function on every attempt: schedule host work on
/// [`Attempt::el`], report the outcome through [`Attempt::completion`],
/// register cleanup with [`Attempt::defer_cancel`].
pub struct Attempt<'a> {
    /// The event loop, mutably — the attempt runs inside an event-loop
    /// callback or a reaction, so scheduling goes through this borrow.
    pub el: &'a mut EventLoop,
    completion: Completion,
    attempt: u32,
}

impl Attempt<'_> {
    /// Which attempt this is (1 on first launch).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// A cloneable token for reporting this attempt's outcome later,
    /// from timer or promise callbacks. Outcomes reported after the
    /// attempt was abandoned (retried, timed out, killed) are
    /// discarded by the epoch check.
    pub fn completion(&self) -> Completion {
        self.completion.clone()
    }

    /// Registers cleanup run when this attempt is torn down — on
    /// success, retry, timeout, preemption and give-up alike (`finally`
    /// semantics). Use it to clear intervals or connections the attempt
    /// opened, the supervised analogue of the paper's `kill` clause.
    pub fn defer_cancel(&mut self, f: impl FnOnce(&mut EventLoop) + 'static) {
        if let Some(sup) = self.completion.sup.upgrade() {
            if let Some(run) = sup.activities.borrow_mut().get_mut(&self.completion.key) {
                if run.epoch == self.completion.epoch {
                    run.cancel_hooks.push(Box::new(f));
                }
            }
        }
    }
}

/// Outcome token for one attempt (see [`Attempt::completion`]).
#[derive(Clone)]
pub struct Completion {
    sup: Weak<Supervisor>,
    key: ActivityKey,
    epoch: u64,
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("key", &self.key)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Completion {
    /// Reports success: the value is delivered into the next reaction
    /// through the activity's completion signal (subject to any armed
    /// chaos faults).
    pub fn succeed(&self, el: &mut EventLoop, value: impl Into<Value>) {
        if let Some(sup) = self.sup.upgrade() {
            sup.on_outcome(el, self.key, self.epoch, Ok(value.into()), true);
        }
    }

    /// Reports failure: the attempt is retried under the activity's
    /// policy, or the failure is surfaced once retries are exhausted.
    pub fn fail(&self, el: &mut EventLoop, reason: impl Into<String>) {
        if let Some(sup) = self.sup.upgrade() {
            sup.on_outcome(el, self.key, self.epoch, Err(reason.into()), true);
        }
    }
}

/// Builds the `{error, attempts}` object delivered on give-up.
fn error_value(reason: &str, attempts: u32) -> Value {
    Value::object([
        ("error", Value::Str(reason.to_owned())),
        ("attempts", Value::Num(attempts as f64)),
    ])
}

impl Supervisor {
    /// A supervisor over `el`.
    pub fn new(el: Rc<RefCell<EventLoop>>) -> Rc<Supervisor> {
        Rc::new(Supervisor {
            el,
            activities: RefCell::new(HashMap::new()),
            specs: RefCell::new(HashMap::new()),
            sinks: RefCell::new(SinkSet::new()),
            chaos: RefCell::new(None),
            stats: RefCell::new(SupervisionStats::default()),
            span_seq: std::cell::Cell::new(0),
        })
    }

    /// Publishes supervision telemetry into `sinks` — pass the
    /// machine's [`hiphop_runtime::Machine::sink_handle`] so activity
    /// events land in the same trace as the reactions they cause.
    pub fn attach_sinks(&self, sinks: SinkSet) {
        *self.sinks.borrow_mut() = sinks;
    }

    /// Arms fault injection; `None`-like disarming is done by passing a
    /// zero-rate policy.
    pub fn set_chaos(&self, policy: ChaosPolicy) {
        *self.chaos.borrow_mut() = (policy.rate > 0.0).then(|| ChaosEngine {
            rng: Rng::seed_from_u64(policy.seed),
            policy,
        });
    }

    /// Snapshot of the supervision counters.
    pub fn stats(&self) -> SupervisionStats {
        *self.stats.borrow()
    }

    /// Number of activities currently registered (running or backing
    /// off).
    pub fn active(&self) -> usize {
        self.activities.borrow().len()
    }

    fn emit(&self, event: TraceEvent<'_>) {
        let sinks = self.sinks.borrow();
        if !sinks.is_empty() {
            sinks.emit(&event);
        }
    }

    /// Emits the just-ended attempt's span (virtual-clock timestamps, so
    /// an attempt that "ran" 300 virtual ms spans 300_000 µs on the
    /// activity track regardless of wall time).
    fn emit_activity_span(&self, now_ms: u64, name: &str, attempt: u32, started_ms: u64) {
        let sinks = self.sinks.borrow();
        if sinks.is_empty() {
            return;
        }
        self.span_seq.set(self.span_seq.get() + 1);
        let record = SpanRecord {
            id: (1 << 50) | self.span_seq.get(),
            parent: 0,
            name: format!("{name}#{attempt}"),
            kind: SpanKind::Activity,
            shard: 0,
            ts_us: started_ms * 1000,
            dur_us: (now_ms.saturating_sub(started_ms) * 1000).max(1),
        };
        sinks.emit(&TraceEvent::Span { record: &record });
    }

    /// Registers a fresh activity run (spawn hook).
    fn register(&self, handle: AsyncHandle, spec: &SupervisedSpec, work: WorkFn) -> ActivityKey {
        let key = (handle.async_id(), handle.instance());
        let seed = 0x5EED_u64 ^ ((key.0 as u64) << 32) ^ key.1;
        self.activities.borrow_mut().insert(
            key,
            ActivityRun {
                name: spec.name.clone(),
                policy: spec.policy.clone(),
                handle,
                fail_signal: spec.fail_signal.clone(),
                work,
                attempt: 0,
                started_ms: 0,
                epoch: 0,
                rng: Rng::seed_from_u64(seed),
                timeout_timer: None,
                retry_timer: None,
                cancel_hooks: Vec::new(),
            },
        );
        self.stats.borrow_mut().launched += 1;
        key
    }

    /// Starts the next attempt of `key`: bumps the epoch (staling every
    /// in-flight callback of the previous attempt), arms the deadline
    /// timer, and runs the work function under panic isolation.
    fn start_attempt(self: &Rc<Self>, el: &mut EventLoop, key: ActivityKey) {
        let now_ms = el.now();
        let Some((work, attempt, epoch, name, timeout_ms)) = ({
            let mut acts = self.activities.borrow_mut();
            acts.get_mut(&key).map(|run| {
                run.attempt += 1;
                run.epoch += 1;
                run.retry_timer = None;
                run.started_ms = now_ms;
                (
                    run.work.clone(),
                    run.attempt,
                    run.epoch,
                    run.name.clone(),
                    run.policy.timeout_ms,
                )
            })
        }) else {
            return;
        };
        if let Some(deadline) = timeout_ms {
            let weak = Rc::downgrade(self);
            let id = el.set_timeout(deadline, move |el| {
                if let Some(sup) = weak.upgrade() {
                    sup.on_timeout(el, key, epoch, deadline);
                }
            });
            if let Some(run) = self.activities.borrow_mut().get_mut(&key) {
                run.timeout_timer = Some(id);
            }
        }
        let inject_panic = self
            .chaos
            .borrow_mut()
            .as_mut()
            .is_some_and(|c| c.draw_work_panic());
        if inject_panic {
            self.stats.borrow_mut().chaos_faults += 1;
        }
        let completion = Completion {
            sup: Rc::downgrade(self),
            key,
            epoch,
        };
        let outcome = {
            let mut ctx = Attempt {
                el,
                completion,
                attempt,
            };
            guarded(|| {
                if inject_panic {
                    std::panic::panic_any(format!(
                        "chaos: injected panic in activity `{name}` attempt {attempt}"
                    ));
                }
                (work)(&mut ctx);
            })
        };
        if let Err(payload) = outcome {
            self.stats.borrow_mut().panics += 1;
            self.emit(TraceEvent::ActivityPanic {
                name: &name,
                payload: &payload,
            });
            self.attempt_failed(el, key, epoch, format!("panic: {payload}"));
        }
    }

    fn on_timeout(self: &Rc<Self>, el: &mut EventLoop, key: ActivityKey, epoch: u64, deadline: u64) {
        let Some((name, attempt)) = ({
            let acts = self.activities.borrow();
            acts.get(&key)
                .filter(|run| run.epoch == epoch)
                .map(|run| (run.name.clone(), run.attempt))
        }) else {
            return;
        };
        self.stats.borrow_mut().timeouts += 1;
        self.emit(TraceEvent::ActivityTimeout {
            name: &name,
            attempt,
            timeout_ms: deadline,
        });
        self.attempt_failed(el, key, epoch, format!("timeout after {deadline}ms"));
    }

    /// Outcome delivery, optionally passing the chaos gate (re-delivery
    /// of a chaos-delayed outcome skips it so a fault stream cannot
    /// postpone delivery forever).
    fn on_outcome(
        self: &Rc<Self>,
        el: &mut EventLoop,
        key: ActivityKey,
        epoch: u64,
        outcome: Result<Value, String>,
        chaos_gate: bool,
    ) {
        {
            let acts = self.activities.borrow();
            let Some(run) = acts.get(&key) else { return };
            if run.epoch != epoch {
                return;
            }
        }
        let fault = if chaos_gate {
            self.chaos
                .borrow_mut()
                .as_mut()
                .and_then(|c| c.draw_completion_fault())
        } else {
            None
        };
        if fault.is_some() {
            self.stats.borrow_mut().chaos_faults += 1;
        }
        match fault {
            Some(Fault::Drop) => {}
            Some(Fault::Delay(ms)) => {
                let weak = Rc::downgrade(self);
                let mut slot = Some(outcome);
                el.set_timeout(ms, move |el| {
                    if let (Some(sup), Some(outcome)) = (weak.upgrade(), slot.take()) {
                        sup.on_outcome(el, key, epoch, outcome, false);
                    }
                });
            }
            Some(Fault::Duplicate) => {
                // The first delivery wins; the duplicate trails through
                // the microtask queue and is discarded as stale — the
                // supervised analogue of the machine's generation check.
                let weak = Rc::downgrade(self);
                let mut slot = Some(outcome.clone());
                el.queue_microtask(move |el| {
                    if let (Some(sup), Some(outcome)) = (weak.upgrade(), slot.take()) {
                        sup.on_outcome(el, key, epoch, outcome, false);
                    }
                });
                self.deliver(el, key, epoch, outcome);
            }
            Some(Fault::Fail) => {
                self.attempt_failed(el, key, epoch, "chaos: injected completion failure".into());
            }
            None => self.deliver(el, key, epoch, outcome),
        }
    }

    fn deliver(self: &Rc<Self>, el: &mut EventLoop, key: ActivityKey, epoch: u64, outcome: Result<Value, String>) {
        match outcome {
            Ok(value) => {
                let Some(mut run) = ({
                    let mut acts = self.activities.borrow_mut();
                    match acts.get(&key) {
                        Some(r) if r.epoch == epoch => acts.remove(&key),
                        _ => None,
                    }
                }) else {
                    return;
                };
                Supervisor::teardown_attempt(&mut run, el);
                self.stats.borrow_mut().completed += 1;
                self.emit_activity_span(el.now(), &run.name, run.attempt, run.started_ms);
                run.handle.notify(value);
            }
            Err(reason) => self.attempt_failed(el, key, epoch, reason),
        }
    }

    /// An attempt failed (explicitly, by timeout, or by panic): retry
    /// under the policy or give up and surface the failure.
    fn attempt_failed(self: &Rc<Self>, el: &mut EventLoop, key: ActivityKey, epoch: u64, reason: String) {
        enum Decision {
            Retry { name: String, attempt: u32, delay: u64, started_ms: u64 },
            GiveUp(Box<ActivityRun>),
        }
        let decision = {
            let mut acts = self.activities.borrow_mut();
            let Some(run) = acts.get_mut(&key) else { return };
            if run.epoch != epoch {
                return;
            }
            if run.attempt <= run.policy.max_retries {
                // Stale the failed attempt's remaining callbacks now;
                // the retry callback below carries no epoch — it
                // re-reads the run when it fires.
                run.epoch += 1;
                let delay = backoff_delay(&run.policy, run.attempt, &mut run.rng);
                Decision::Retry {
                    name: run.name.clone(),
                    attempt: run.attempt,
                    delay,
                    started_ms: run.started_ms,
                }
            } else {
                Decision::GiveUp(Box::new(acts.remove(&key).expect("present above")))
            }
        };
        match decision {
            Decision::Retry { name, attempt, delay, started_ms } => {
                if let Some(run) = self.activities.borrow_mut().get_mut(&key) {
                    if let Some(t) = run.timeout_timer.take() {
                        el.clear(t);
                    }
                }
                self.run_cancel_hooks(key, el);
                self.stats.borrow_mut().retries += 1;
                self.emit_activity_span(el.now(), &name, attempt, started_ms);
                self.emit(TraceEvent::ActivityRetry {
                    name: &name,
                    attempt,
                    delay_ms: delay,
                });
                let weak = Rc::downgrade(self);
                let id = el.set_timeout(delay, move |el| {
                    if let Some(sup) = weak.upgrade() {
                        sup.start_attempt(el, key);
                    }
                });
                if let Some(run) = self.activities.borrow_mut().get_mut(&key) {
                    run.retry_timer = Some(id);
                }
            }
            Decision::GiveUp(mut run) => {
                Supervisor::teardown_attempt(&mut run, el);
                self.stats.borrow_mut().gave_up += 1;
                self.emit_activity_span(el.now(), &run.name, run.attempt, run.started_ms);
                let err = error_value(&reason, run.attempt);
                match &run.fail_signal {
                    Some(sig) => run.handle.react(vec![(sig.clone(), err)]),
                    None => run.handle.notify(err),
                }
            }
        }
    }

    /// Preemption (the async statement's kill hook): drop the run and
    /// tear down its timers and cleanup hooks. Idempotent — give-up or
    /// completion may already have removed the run.
    fn cancel(&self, key: ActivityKey, el: &mut EventLoop) {
        let Some(mut run) = self.activities.borrow_mut().remove(&key) else {
            return;
        };
        Supervisor::teardown_attempt(&mut run, el);
        self.stats.borrow_mut().killed += 1;
        if run.attempt > 0 {
            self.emit_activity_span(el.now(), &run.name, run.attempt, run.started_ms);
        }
    }

    /// Clears the run's timers and drains its cleanup hooks.
    fn teardown_attempt(run: &mut ActivityRun, el: &mut EventLoop) {
        if let Some(t) = run.timeout_timer.take() {
            el.clear(t);
        }
        if let Some(t) = run.retry_timer.take() {
            el.clear(t);
        }
        for hook in run.cancel_hooks.drain(..) {
            hook(el);
        }
    }

    /// Captures every registered activity's supervision state for a
    /// durable snapshot: attempt count, epoch, the exact backoff-RNG
    /// position, and pending delays as *remaining* virtual milliseconds
    /// (pool shard clocks advance in lockstep, so the remainder is
    /// portable across shards). Does not disturb the runs.
    pub fn snapshot_activities(&self, el: &EventLoop) -> Vec<ActivitySnapshot> {
        let now = el.now();
        let remaining = |t: &Option<TimerId>| {
            t.and_then(|id| el.deadline_of(id))
                .map(|d| d.saturating_sub(now))
        };
        let mut out: Vec<ActivitySnapshot> = self
            .activities
            .borrow()
            .iter()
            .map(|(key, run)| {
                let (rng_state, rng_inc) = run.rng.state_parts();
                ActivitySnapshot {
                    async_id: key.0,
                    instance: key.1,
                    name: run.name.clone(),
                    attempt: run.attempt,
                    epoch: run.epoch,
                    rng_state,
                    rng_inc,
                    retry_in_ms: remaining(&run.retry_timer),
                    timeout_in_ms: remaining(&run.timeout_timer),
                }
            })
            .collect();
        out.sort_by_key(|a| (a.async_id, a.instance));
        out
    }

    /// Migration source side: snapshots every activity, then removes the
    /// runs — clearing their timers and running their cleanup hooks, so
    /// the abandoned attempts release any local resources. The returned
    /// snapshots are what [`Supervisor::adopt`] consumes on the target
    /// shard. Not counted as kills in the stats.
    pub fn export(&self, el: &mut EventLoop) -> Vec<ActivitySnapshot> {
        let snaps = self.snapshot_activities(el);
        let runs: Vec<ActivityRun> = {
            let mut acts = self.activities.borrow_mut();
            let keys: Vec<ActivityKey> = acts.keys().copied().collect();
            keys.into_iter().filter_map(|k| acts.remove(&k)).collect()
        };
        for mut run in runs {
            Supervisor::teardown_attempt(&mut run, el);
        }
        snaps
    }

    /// Migration/recovery target side: rebuilds activity runs from
    /// snapshots against a restored `machine`. Each snapshot's name must
    /// match a spec registered (by [`supervised_hooks`]) on *this*
    /// supervisor; the handle is re-derived from the machine's async
    /// instance (`hiphop_runtime::Machine::async_handle`), so the
    /// adopted activity notifies the adopting machine.
    ///
    /// Handoff semantics: an activity that was **backing off** resumes
    /// its retry after exactly the remaining delay, same attempt number,
    /// same backoff-RNG position. An activity whose attempt was
    /// **in flight** is restarted immediately as the *same* attempt
    /// number with a fresh timeout budget — at-least-once semantics for
    /// the work function, which is the contract supervised activities
    /// already live under (retries re-run it).
    ///
    /// # Errors
    ///
    /// A snapshot naming an unregistered spec or an async instance the
    /// machine does not have fails with a descriptive message; runs
    /// adopted before the failure stay adopted.
    pub fn adopt(
        self: &Rc<Self>,
        el: &mut EventLoop,
        machine: &hiphop_runtime::Machine,
        snaps: &[ActivitySnapshot],
    ) -> Result<(), String> {
        for snap in snaps {
            let (spec, work) = {
                let specs = self.specs.borrow();
                let (spec, work) = specs.get(&snap.name).ok_or_else(|| {
                    format!("adopt: no spec registered for activity `{}`", snap.name)
                })?;
                (spec.clone(), work.clone())
            };
            let handle = machine
                .async_handle(snap.async_id as usize)
                .filter(|h| h.instance() == snap.instance)
                .ok_or_else(|| {
                    format!(
                        "adopt: machine has no async instance ({}, {}) for `{}`",
                        snap.async_id, snap.instance, snap.name
                    )
                })?;
            let key = (snap.async_id, snap.instance);
            self.activities.borrow_mut().insert(
                key,
                ActivityRun {
                    name: snap.name.clone(),
                    policy: spec.policy.clone(),
                    handle,
                    fail_signal: spec.fail_signal.clone(),
                    work,
                    attempt: snap.attempt,
                    started_ms: el.now(),
                    epoch: snap.epoch,
                    rng: Rng::from_parts(snap.rng_state, snap.rng_inc),
                    timeout_timer: None,
                    retry_timer: None,
                    cancel_hooks: Vec::new(),
                },
            );
            if let Some(delay) = snap.retry_in_ms {
                let weak = Rc::downgrade(self);
                let id = el.set_timeout(delay, move |el| {
                    if let Some(sup) = weak.upgrade() {
                        sup.start_attempt(el, key);
                    }
                });
                if let Some(run) = self.activities.borrow_mut().get_mut(&key) {
                    run.retry_timer = Some(id);
                }
            } else {
                // In-flight attempt: restart it as the same attempt
                // number (start_attempt pre-increments).
                if let Some(run) = self.activities.borrow_mut().get_mut(&key) {
                    run.attempt = run.attempt.saturating_sub(1);
                }
                self.start_attempt(el, key);
            }
        }
        Ok(())
    }

    /// Records a spec + work pair in the adoption registry (keyed by
    /// spec name, last registration wins).
    fn register_spec(&self, spec: &SupervisedSpec, work: WorkFn) {
        self.specs
            .borrow_mut()
            .insert(spec.name.clone(), (spec.clone(), work));
    }

    /// Runs the cancel hooks of a still-registered run (retry path).
    fn run_cancel_hooks(&self, key: ActivityKey, el: &mut EventLoop) {
        let hooks = match self.activities.borrow_mut().get_mut(&key) {
            Some(run) => std::mem::take(&mut run.cancel_hooks),
            None => Vec::new(),
        };
        for hook in hooks {
            hook(el);
        }
    }
}

/// Computes the capped, jittered exponential backoff before the retry
/// that follows failed attempt `attempt`.
fn backoff_delay(policy: &ActivityPolicy, attempt: u32, rng: &mut Rng) -> u64 {
    let exp = attempt.saturating_sub(1).min(20);
    let raw = policy
        .backoff_base_ms
        .saturating_mul(1u64 << exp)
        .min(policy.backoff_cap_ms);
    let jitter = policy.jitter.clamp(0.0, 1.0);
    if jitter == 0.0 || raw == 0 {
        return raw;
    }
    let factor = 1.0 + jitter * (2.0 * rng.gen_f64() - 1.0);
    ((raw as f64 * factor).round() as u64).min(policy.backoff_cap_ms)
}

/// The spawn/kill hook pair of a supervised activity. Use these to
/// embed supervision into a hand-built [`AsyncSpec`] or to register the
/// hooks in a textual-language host registry, so a `.hh` program can
/// write `async res { host "fetch.spawn" } kill { host "fetch.kill" }`.
pub fn supervised_hooks(
    sup: &Rc<Supervisor>,
    spec: SupervisedSpec,
    work: impl Fn(&mut Attempt<'_>) + 'static,
) -> (AsyncHook, AsyncHook) {
    let work: WorkFn = Rc::new(work);
    sup.register_spec(&spec, work.clone());
    let sup_spawn = sup.clone();
    let spec_spawn = spec.clone();
    let hook_name = format!("supervised.{}.spawn", spec.name);
    let spawn = AsyncHook::new(hook_name, move |ctx| {
        let key = sup_spawn.register(ctx.handle.clone(), &spec_spawn, work.clone());
        // Hooks run inside a reaction; reactions never run while the
        // event loop is borrowed (callbacks queue through the mailbox),
        // so this borrow cannot collide with a running `step()`.
        let el = sup_spawn.el.clone();
        let mut el = el.borrow_mut();
        sup_spawn.start_attempt(&mut el, key);
    });
    let sup_kill = sup.clone();
    let kill = AsyncHook::new(format!("supervised.{}.kill", spec.name), move |ctx| {
        let key = (ctx.handle.async_id(), ctx.handle.instance());
        let el = sup_kill.el.clone();
        let mut el = el.borrow_mut();
        sup_kill.cancel(key, &mut el);
    });
    (spawn, kill)
}

/// Builds a supervised `async` statement: `work` runs on every attempt
/// under `spec.policy`, reporting through its [`Attempt::completion`]
/// token. The statement's kill hook deregisters the activity and runs
/// its cleanup hooks, so `abort` preempts in-flight attempts *and*
/// pending retries.
pub fn supervised_async(
    sup: &Rc<Supervisor>,
    spec: SupervisedSpec,
    work: impl Fn(&mut Attempt<'_>) + 'static,
) -> Stmt {
    let done_signal = spec.done_signal.clone();
    let (spawn, kill) = supervised_hooks(sup, spec, work);
    Stmt::async_(AsyncSpec {
        done_signal,
        on_spawn: Some(spawn),
        on_kill: Some(kill),
        on_suspend: None,
        on_resume: None,
    })
}
