//! A JavaScript-style single-threaded event loop with **virtual time** —
//! the host substrate HipHop.js inherits from its JavaScript runtime.
//!
//! The paper's `Timer` module wraps `setInterval` (§2.2.5) and its
//! authentication service resolves a promise later (§2.2.4); both need an
//! event loop. Using virtual time keeps every temporal test
//! deterministic: `advance_by(1000)` runs exactly the timers due in the
//! next simulated second, in deadline order.
//!
//! The [`Driver`] wires an event loop to a reactive machine: after each
//! callback batch it drains the machine mailbox, so `notify`/`react`
//! calls queued by async bodies turn into reactions exactly as in the
//! JavaScript runtime.
//!
//! # Examples
//!
//! ```
//! use hiphop_eventloop::EventLoop;
//! use std::rc::Rc;
//! use std::cell::Cell;
//!
//! let mut el = EventLoop::new();
//! let hits = Rc::new(Cell::new(0));
//! let h = hits.clone();
//! el.set_interval(1000, move |_| { h.set(h.get() + 1); });
//! el.advance_by(3500);
//! assert_eq!(hits.get(), 3);
//! assert_eq!(el.now(), 3500);
//! ```

#![warn(missing_docs)]

pub mod multitier;
pub mod sessions;
pub mod stdlib;
pub mod supervisor;

use hiphop_runtime::{Machine, Reaction, RuntimeError};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

/// Identifier returned by [`EventLoop::set_timeout`] /
/// [`EventLoop::set_interval`], the analogue of JavaScript timer handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

impl TimerId {
    /// Raw id, e.g. for storing in a [`hiphop_core::value::Value`].
    pub fn raw(self) -> u64 {
        self.0
    }
    /// Rebuilds a handle from [`TimerId::raw`].
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }
}

/// A timer callback. It receives the event loop so it can schedule more
/// work (as JavaScript callbacks do).
pub type Callback = Box<dyn FnMut(&mut EventLoop)>;

struct Timer {
    callback: Option<Callback>,
    period: Option<u64>,
}

/// The virtual-time event loop.
#[derive(Default)]
pub struct EventLoop {
    now_ms: u64,
    next_id: u64,
    timers: HashMap<TimerId, Timer>,
    // (deadline, sequence, id): sequence keeps FIFO order for equal
    // deadlines, as in JavaScript.
    heap: BinaryHeap<Reverse<(u64, u64, TimerId)>>,
    seq: u64,
    microtasks: VecDeque<Callback>,
}

impl EventLoop {
    /// A fresh event loop at virtual time 0.
    pub fn new() -> EventLoop {
        EventLoop::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now_ms
    }

    /// Schedules a one-shot callback after `delay_ms`.
    pub fn set_timeout(
        &mut self,
        delay_ms: u64,
        f: impl FnMut(&mut EventLoop) + 'static,
    ) -> TimerId {
        self.schedule(delay_ms, None, Box::new(f))
    }

    /// Schedules a repeating callback every `period_ms` (first fire after
    /// one period, like JavaScript's `setInterval`).
    pub fn set_interval(
        &mut self,
        period_ms: u64,
        f: impl FnMut(&mut EventLoop) + 'static,
    ) -> TimerId {
        self.schedule(period_ms, Some(period_ms), Box::new(f))
    }

    fn schedule(&mut self, delay: u64, period: Option<u64>, callback: Callback) -> TimerId {
        self.next_id += 1;
        let id = TimerId(self.next_id);
        self.timers.insert(
            id,
            Timer {
                callback: Some(callback),
                period,
            },
        );
        self.seq += 1;
        self.heap.push(Reverse((self.now_ms + delay, self.seq, id)));
        id
    }

    /// Cancels a timer (`clearInterval`/`clearTimeout`). Unknown or
    /// already-fired one-shot ids are ignored.
    pub fn clear(&mut self, id: TimerId) {
        self.timers.remove(&id);
    }

    /// Whether a timer is still registered.
    pub fn is_scheduled(&self, id: TimerId) -> bool {
        self.timers.contains_key(&id)
    }

    /// Queues a microtask (promise continuation): runs before any timer,
    /// at the current virtual instant.
    pub fn queue_microtask(&mut self, f: impl FnMut(&mut EventLoop) + 'static) {
        self.microtasks.push_back(Box::new(f));
    }

    /// Number of pending timers.
    pub fn pending(&self) -> usize {
        self.timers.len()
    }

    /// Deadline (virtual ms) of a specific live timer — `None` if the
    /// timer fired or was cleared. Session snapshots use this to record
    /// supervision delays as *remaining* milliseconds, which are portable
    /// across shard clocks advancing in lockstep.
    pub fn deadline_of(&self, id: TimerId) -> Option<u64> {
        if !self.timers.contains_key(&id) {
            return None;
        }
        self.heap
            .iter()
            .filter(|Reverse((_, _, tid))| *tid == id)
            .map(|Reverse((d, _, _))| *d)
            .min()
    }

    /// Deadline of the next live timer, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.heap
            .iter()
            .filter(|Reverse((_, _, id))| self.timers.contains_key(id))
            .map(|Reverse((d, _, _))| *d)
            .min()
    }

    fn run_microtasks(&mut self) {
        while let Some(mut t) = self.microtasks.pop_front() {
            t(self);
        }
    }

    /// Runs the next due timer (advancing time to its deadline). Returns
    /// `false` when nothing is pending.
    pub fn step(&mut self) -> bool {
        self.run_microtasks();
        while let Some(Reverse((deadline, _, id))) = self.heap.pop() {
            if !self.timers.contains_key(&id) {
                continue; // cancelled
            }
            self.now_ms = self.now_ms.max(deadline);
            let timer = self.timers.get_mut(&id).expect("checked above");
            let mut cb = timer.callback.take().expect("callback present");
            let period = timer.period;
            match period {
                Some(p) => {
                    self.seq += 1;
                    self.heap.push(Reverse((deadline + p, self.seq, id)));
                }
                None => {
                    self.timers.remove(&id);
                }
            }
            cb(self);
            // Re-install the callback for repeating timers (unless the
            // callback cleared itself).
            if period.is_some() {
                if let Some(t) = self.timers.get_mut(&id) {
                    t.callback = Some(cb);
                }
            }
            self.run_microtasks();
            return true;
        }
        false
    }

    /// Advances virtual time by `ms`, firing every timer due in the
    /// window, in deadline order.
    pub fn advance_by(&mut self, ms: u64) {
        let target = self.now_ms + ms;
        self.run_microtasks();
        while self.next_deadline().map(|d| d <= target).unwrap_or(false) {
            self.step();
        }
        self.now_ms = target;
    }

    /// Runs until no timers remain or `max_steps` callbacks have fired
    /// (guarding against infinite intervals). Returns the number of
    /// callbacks run.
    pub fn run_until_idle(&mut self, max_steps: usize) -> usize {
        let mut steps = 0;
        while steps < max_steps && self.step() {
            steps += 1;
        }
        steps
    }
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("now_ms", &self.now_ms)
            .field("pending", &self.timers.len())
            .finish()
    }
}

/// A reactive machine attached to an event loop — the paper's client-side
/// runtime: timers fire, async bodies queue `notify`/`react`, and the
/// driver turns them into atomic reactions.
pub struct Driver {
    /// The shared machine.
    pub machine: Rc<RefCell<Machine>>,
    /// The shared event loop.
    pub el: Rc<RefCell<EventLoop>>,
}

impl Driver {
    /// Wraps a machine and a fresh event loop.
    pub fn new(machine: Machine) -> Driver {
        Driver {
            machine: Rc::new(RefCell::new(machine)),
            el: Rc::new(RefCell::new(EventLoop::new())),
        }
    }

    /// Runs a reaction with inputs, then drains any follow-up mailbox
    /// operations.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn react(
        &self,
        inputs: &[(&str, hiphop_core::value::Value)],
    ) -> Result<Vec<Reaction>, RuntimeError> {
        let mut m = self.machine.borrow_mut();
        let mut out = vec![m.react_with(inputs)?];
        out.extend(m.drain()?);
        Ok(out)
    }

    /// Advances virtual time, draining the machine mailbox after every
    /// callback so notifications become reactions promptly. Pending
    /// microtasks run first, mirroring [`EventLoop::advance_by`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors. On error the event loop is left at a
    /// consistent state: virtual time stays at the failure point and
    /// still-queued timers and microtasks remain pending, so a
    /// subsequent `advance_by` resumes where this one stopped.
    pub fn advance_by(&self, ms: u64) -> Result<Vec<Reaction>, RuntimeError> {
        let target = self.el.borrow().now() + ms;
        let mut reactions = Vec::new();
        self.el.borrow_mut().run_microtasks();
        self.drain_into(&mut reactions)?;
        loop {
            let due = {
                let el = self.el.borrow();
                el.next_deadline().map(|d| d <= target).unwrap_or(false)
            };
            if !due {
                break;
            }
            self.el.borrow_mut().step();
            self.drain_into(&mut reactions)?;
        }
        self.el.borrow_mut().now_ms = target;
        Ok(reactions)
    }

    /// Drains the mailbox into `out`, keeping already-collected
    /// reactions observable through listeners/sinks even when a later
    /// mailbox operation fails.
    fn drain_into(&self, out: &mut Vec<Reaction>) -> Result<(), RuntimeError> {
        out.extend(self.machine.borrow_mut().drain()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn timeout_fires_once_at_deadline() {
        let mut el = EventLoop::new();
        let fired = Rc::new(Cell::new(0u32));
        let f = fired.clone();
        el.set_timeout(500, move |el| {
            assert_eq!(el.now(), 500);
            f.set(f.get() + 1);
        });
        el.advance_by(499);
        assert_eq!(fired.get(), 0);
        el.advance_by(1);
        assert_eq!(fired.get(), 1);
        el.advance_by(10_000);
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn interval_repeats_and_clears() {
        let mut el = EventLoop::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let id = el.set_interval(100, move |_| c.set(c.get() + 1));
        el.advance_by(1000);
        assert_eq!(count.get(), 10);
        el.clear(id);
        el.advance_by(1000);
        assert_eq!(count.get(), 10);
        assert!(!el.is_scheduled(id));
    }

    #[test]
    fn interval_can_clear_itself() {
        let mut el = EventLoop::new();
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let id_cell: Rc<Cell<Option<TimerId>>> = Rc::new(Cell::new(None));
        let idc = id_cell.clone();
        let id = el.set_interval(100, move |el| {
            c.set(c.get() + 1);
            if c.get() == 3 {
                el.clear(idc.get().expect("id set"));
            }
        });
        id_cell.set(Some(id));
        el.advance_by(10_000);
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn deadline_order_with_ties_is_fifo() {
        let mut el = EventLoop::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for tag in ["a", "b", "c"] {
            let o = order.clone();
            el.set_timeout(100, move |_| o.borrow_mut().push(tag));
        }
        el.advance_by(100);
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn callbacks_can_schedule_more_work() {
        let mut el = EventLoop::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        el.set_timeout(100, move |el| {
            l.borrow_mut().push("first");
            let l2 = l.clone();
            el.set_timeout(50, move |_| l2.borrow_mut().push("second"));
        });
        el.advance_by(200);
        assert_eq!(*log.borrow(), vec!["first", "second"]);
        assert_eq!(el.now(), 200);
    }

    #[test]
    fn microtasks_run_before_timers() {
        let mut el = EventLoop::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        el.set_timeout(0, move |_| l1.borrow_mut().push("timer"));
        let l2 = log.clone();
        el.queue_microtask(move |_| l2.borrow_mut().push("micro"));
        el.step();
        assert_eq!(*log.borrow(), vec!["micro", "timer"]);
    }

    #[test]
    fn run_until_idle_respects_cap() {
        let mut el = EventLoop::new();
        el.set_interval(1, |_| {});
        let steps = el.run_until_idle(25);
        assert_eq!(steps, 25, "interval would run forever; cap stops it");
    }

    #[test]
    fn timer_id_raw_roundtrip() {
        let mut el = EventLoop::new();
        let id = el.set_timeout(1, |_| {});
        assert_eq!(TimerId::from_raw(id.raw()), id);
    }
}
