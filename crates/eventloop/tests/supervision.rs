//! Supervised activity tests: deadlines, retry/backoff schedules,
//! give-up delivery, preemption mid-retry, cleanup hooks, panic
//! isolation, and seeded chaos determinism.

use hiphop_core::prelude::*;
use hiphop_eventloop::supervisor::{
    ActivityPolicy, ChaosPolicy, SupervisedSpec, Supervisor,
};
use hiphop_eventloop::{Driver, EventLoop};
use hiphop_runtime::machine_for;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn no_jitter(policy: ActivityPolicy) -> ActivityPolicy {
    ActivityPolicy {
        jitter: 0.0,
        ..policy
    }
}

/// Builds `Main { body }` with signals and wires it to a driver sharing
/// `el`.
fn driver_for(main: &Module, el: Rc<RefCell<EventLoop>>) -> Driver {
    let machine = machine_for(main, &ModuleRegistry::new()).expect("compiles");
    Driver {
        machine: Rc::new(RefCell::new(machine)),
        el,
    }
}

#[test]
fn success_on_first_attempt_delivers_value() {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = hiphop_eventloop::supervisor::supervised_async(
        &sup,
        SupervisedSpec::new("fetch").done("res"),
        |a| {
            let c = a.completion();
            a.el.set_timeout(50, move |el| c.succeed(el, 42i64));
        },
    );
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    let reactions = driver.advance_by(100).unwrap();
    assert!(reactions.iter().any(|r| r.present("res")));
    assert_eq!(driver.machine.borrow().nowval("res"), Value::Num(42.0));
    let stats = sup.stats();
    assert_eq!(stats.launched, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.retries, 0);
    assert_eq!(sup.active(), 0, "registry empty after completion");
}

#[test]
fn timeout_retries_until_an_attempt_succeeds() {
    // Attempts 1 and 2 never complete; the 100ms deadline fails them.
    // Attempt 3 completes in 20ms.
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = hiphop_eventloop::supervisor::supervised_async(
        &sup,
        SupervisedSpec::new("flaky").done("res").policy(no_jitter(
            ActivityPolicy::default()
                .with_timeout(100)
                .with_retries(5)
                .with_backoff(10, 80),
        )),
        |a| {
            if a.attempt() >= 3 {
                let c = a.completion();
                a.el.set_timeout(20, move |el| c.succeed(el, "ok"));
            }
            // Attempts 1-2 hang: only the supervisor's deadline saves us.
        },
    );
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el.clone());
    driver.react(&[]).unwrap();
    driver.advance_by(1000).unwrap();
    assert_eq!(driver.machine.borrow().nowval("res"), Value::from("ok"));
    let stats = sup.stats();
    assert_eq!(stats.timeouts, 2);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(el.borrow().pending(), 0, "all supervision timers cleared");
}

#[test]
fn backoff_schedule_is_exponential_capped_and_deterministic() {
    // Every attempt fails instantly; base 100, cap 400, 4 retries, no
    // jitter. Attempt starts: 0, +100, +200, +400, +400 (capped).
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let starts = Rc::new(RefCell::new(Vec::new()));
    let starts2 = starts.clone();
    let body = hiphop_eventloop::supervisor::supervised_async(
        &sup,
        SupervisedSpec::new("doomed").done("res").policy(no_jitter(
            ActivityPolicy::default().with_retries(4).with_backoff(100, 400),
        )),
        move |a| {
            starts2.borrow_mut().push(a.el.now());
            let c = a.completion();
            c.fail(a.el, "nope");
        },
    );
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    driver.advance_by(5000).unwrap();
    assert_eq!(*starts.borrow(), vec![0, 100, 300, 700, 1100]);
    let stats = sup.stats();
    assert_eq!(stats.retries, 4);
    assert_eq!(stats.gave_up, 1);
    // Give-up surfaces the error object through the completion signal.
    let res = driver.machine.borrow().nowval("res");
    assert_eq!(res.field("error"), Value::from("nope"));
    assert_eq!(res.field("attempts"), Value::Num(5.0));
}

#[test]
fn jittered_backoff_stays_within_band_and_replays() {
    let schedule = || {
        let el = Rc::new(RefCell::new(EventLoop::new()));
        let sup = Supervisor::new(el.clone());
        let starts = Rc::new(RefCell::new(Vec::new()));
        let starts2 = starts.clone();
        let body = hiphop_eventloop::supervisor::supervised_async(
            &sup,
            SupervisedSpec::new("jitter").done("res").policy(ActivityPolicy {
                jitter: 0.5,
                ..ActivityPolicy::default().with_retries(3).with_backoff(100, 1000)
            }),
            move |a| {
                starts2.borrow_mut().push(a.el.now());
                let c = a.completion();
                c.fail(a.el, "nope");
            },
        );
        let main = Module::new("Main")
            .inout(SignalDecl::new("res", Direction::InOut))
            .body(body);
        let driver = driver_for(&main, el);
        driver.react(&[]).unwrap();
        driver.advance_by(10_000).unwrap();
        let v = starts.borrow().clone();
        v
    };
    let a = schedule();
    let b = schedule();
    assert_eq!(a, b, "jitter is deterministic per activity");
    assert_eq!(a.len(), 4);
    // Delays stay within 1 ± 0.5 of the nominal 100, 200, 400 schedule.
    let delays: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
    for (delay, nominal) in delays.iter().zip([100u64, 200, 400]) {
        assert!(
            *delay >= nominal / 2 && *delay <= nominal * 3 / 2,
            "delay {delay} outside band around {nominal}"
        );
    }
}

#[test]
fn abort_kills_activity_mid_retry_and_clears_timers() {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = Stmt::abort(
        Delay::cond(Expr::now("stop")),
        hiphop_eventloop::supervisor::supervised_async(
            &sup,
            SupervisedSpec::new("victim").done("res").policy(no_jitter(
                ActivityPolicy::default().with_retries(10).with_backoff(500, 500),
            )),
            |a| {
                let c = a.completion();
                c.fail(a.el, "always");
            },
        ),
    );
    let main = Module::new("Main")
        .input(SignalDecl::new("stop", Direction::In))
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el.clone());
    driver.react(&[]).unwrap();
    // First attempt failed at t=0; retry timer pending for t=500.
    driver.advance_by(100).unwrap();
    assert_eq!(el.borrow().pending(), 1, "retry timer armed");
    assert_eq!(sup.active(), 1);
    driver.react(&[("stop", Value::Bool(true))]).unwrap();
    assert_eq!(el.borrow().pending(), 0, "kill cancelled the retry timer");
    assert_eq!(sup.active(), 0);
    assert_eq!(sup.stats().killed, 1);
    // Nothing left to fire.
    let reactions = driver.advance_by(10_000).unwrap();
    assert!(reactions.is_empty());
}

#[test]
fn defer_cancel_runs_on_retry_timeout_kill_and_success() {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let cleanups = Rc::new(Cell::new(0u32));
    let cl = cleanups.clone();
    let body = Stmt::abort(
        Delay::cond(Expr::now("stop")),
        hiphop_eventloop::supervisor::supervised_async(
            &sup,
            SupervisedSpec::new("leaky").done("res").policy(no_jitter(
                ActivityPolicy::default()
                    .with_timeout(100)
                    .with_retries(10)
                    .with_backoff(50, 50),
            )),
            move |a| {
                let cl = cl.clone();
                a.defer_cancel(move |_| cl.set(cl.get() + 1));
                if a.attempt() == 3 {
                    let c = a.completion();
                    a.el.set_timeout(10, move |el| c.succeed(el, true));
                }
                // Other attempts hang until the deadline.
            },
        ),
    );
    let main = Module::new("Main")
        .input(SignalDecl::new("stop", Direction::In))
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    driver.advance_by(2000).unwrap();
    // Attempts 1 and 2 timed out (2 cleanups); attempt 3 succeeded and
    // its cleanup ran with `finally` semantics (3rd).
    assert_eq!(cleanups.get(), 3);
    assert_eq!(sup.stats().completed, 1);
}

#[test]
fn stale_success_after_timeout_give_up_is_discarded() {
    // The attempt would succeed at t=200, but the deadline is 100 and no
    // retries remain: the activity gives up at t=100; the late success
    // must be dropped by the epoch check.
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = hiphop_eventloop::supervisor::supervised_async(
        &sup,
        SupervisedSpec::new("slow")
            .done("res")
            .policy(no_jitter(ActivityPolicy::default().with_timeout(100))),
        |a| {
            let c = a.completion();
            a.el.set_timeout(200, move |el| c.succeed(el, "too late"));
        },
    );
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    driver.advance_by(1000).unwrap();
    let stats = sup.stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.gave_up, 1);
    assert_eq!(stats.completed, 0, "late success discarded");
    let res = driver.machine.borrow().nowval("res");
    assert_eq!(res.field("error"), Value::from("timeout after 100ms"));
}

#[test]
fn give_up_can_stage_a_failure_signal_reaction() {
    // fail_signal routes the error into the reaction as an interface
    // input; the program preempts on it and recovers.
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = Stmt::seq([
        Stmt::abort(
            Delay::cond(Expr::now("svcFail")),
            hiphop_eventloop::supervisor::supervised_async(
                &sup,
                SupervisedSpec::new("svc")
                    .done("res")
                    .fail("svcFail")
                    .policy(no_jitter(ActivityPolicy::default().with_retries(1).with_backoff(10, 10))),
                |a| {
                    let c = a.completion();
                    c.fail(a.el, "connection refused");
                },
            ),
        ),
        Stmt::emit("recovered"),
    ]);
    let main = Module::new("Main")
        .input(SignalDecl::new("svcFail", Direction::In))
        .inout(SignalDecl::new("res", Direction::InOut))
        .output(SignalDecl::new("recovered", Direction::Out))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    let reactions = driver.advance_by(1000).unwrap();
    let recovered = reactions.iter().any(|r| r.present("recovered"));
    assert!(recovered, "failure signal preempted the waiting async");
    assert_eq!(sup.stats().gave_up, 1);
    assert_eq!(
        driver.machine.borrow().nowval("res"),
        Value::Null,
        "the completion signal never fired"
    );
}

#[test]
fn panicking_work_is_isolated_and_retried() {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    let body = hiphop_eventloop::supervisor::supervised_async(
        &sup,
        SupervisedSpec::new("boom").done("res").policy(no_jitter(
            ActivityPolicy::default().with_retries(2).with_backoff(10, 10),
        )),
        |a| {
            if a.attempt() == 1 {
                panic!("host bug");
            }
            let c = a.completion();
            c.succeed(a.el, "recovered");
        },
    );
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el);
    driver.react(&[]).unwrap();
    driver.advance_by(1000).unwrap();
    assert_eq!(
        driver.machine.borrow().nowval("res"),
        Value::from("recovered")
    );
    let stats = sup.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
}

/// Runs a small supervised scenario under chaos and returns
/// `(stats, final value, virtual end time)`.
fn chaos_run(seed: u64, rate: f64) -> (hiphop_eventloop::supervisor::SupervisionStats, Value, u64) {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let sup = Supervisor::new(el.clone());
    sup.set_chaos(ChaosPolicy::new(seed, rate));
    let body = Stmt::every(
        Delay::cond(Expr::now("go")),
        hiphop_eventloop::supervisor::supervised_async(
            &sup,
            SupervisedSpec::new("svc").done("res").policy(no_jitter(
                ActivityPolicy::default()
                    .with_timeout(200)
                    .with_retries(3)
                    .with_backoff(20, 100),
            )),
            |a| {
                let c = a.completion();
                a.el.set_timeout(30, move |el| c.succeed(el, "ok"));
            },
        ),
    );
    let main = Module::new("Main")
        .input(SignalDecl::new("go", Direction::In))
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(body);
    let driver = driver_for(&main, el.clone());
    driver.react(&[]).unwrap();
    for _ in 0..5 {
        driver.react(&[("go", Value::Bool(true))]).unwrap();
        driver.advance_by(2000).unwrap();
    }
    let now = el.borrow().now();
    let res = driver.machine.borrow().nowval("res");
    (sup.stats(), res, now)
}

#[test]
fn chaos_fault_schedule_is_deterministic_per_seed() {
    let a = chaos_run(0xDECAF, 0.8);
    let b = chaos_run(0xDECAF, 0.8);
    assert_eq!(a, b, "same seed, same faults, same outcome");
    assert!(a.0.chaos_faults > 0, "rate 0.8 must inject something");
    let c = chaos_run(0xBEEF, 0.8);
    assert!(
        a.0 != c.0 || a.1 != c.1,
        "different seeds should explore different schedules"
    );
}

#[test]
fn chaos_never_wedges_a_supervised_activity() {
    // With a deadline and bounded retries, every launched activity must
    // end in completed / gave_up / killed — never a wedge — whatever
    // the fault stream does.
    for seed in 0..20u64 {
        let (stats, _, _) = chaos_run(seed, 0.7);
        assert_eq!(stats.launched, 5, "seed {seed}");
        assert_eq!(
            stats.completed + stats.gave_up + stats.killed,
            stats.launched,
            "seed {seed}: every activity resolved: {stats:?}"
        );
    }
}

#[test]
fn driver_advance_by_runs_microtasks_without_due_timers() {
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let main = Module::new("Main")
        .inout(SignalDecl::new("res", Direction::InOut))
        .body(Stmt::Nothing);
    let driver = driver_for(&main, el.clone());
    driver.react(&[]).unwrap();
    let ran = Rc::new(Cell::new(false));
    let r = ran.clone();
    el.borrow_mut().queue_microtask(move |_| r.set(true));
    driver.advance_by(10).unwrap();
    assert!(ran.get(), "microtasks run even when no timer is due");
}

#[test]
fn driver_advance_by_error_preserves_queued_work() {
    // A timer at t=10 stages a reaction that panics inside a host atom;
    // an unrelated timer at t=20 must survive the error and fire on the
    // next advance_by.
    let el = Rc::new(RefCell::new(EventLoop::new()));
    let body = Stmt::every(
        Delay::cond(Expr::now("kaboom")),
        Stmt::atom("boom", vec![], |_| panic!("injected")),
    );
    let main = Module::new("Main")
        .input(SignalDecl::new("kaboom", Direction::In))
        .body(body);
    let machine = machine_for(&main, &ModuleRegistry::new()).expect("compiles");
    let driver = Driver {
        machine: Rc::new(RefCell::new(machine)),
        el: el.clone(),
    };
    driver.react(&[]).unwrap();
    let mailbox = driver.machine.borrow().mailbox();
    el.borrow_mut().set_timeout(10, move |_| {
        mailbox.push(hiphop_core::mailbox::MachineOp::React(vec![(
            "kaboom".into(),
            Value::Bool(true),
        )]));
    });
    let fired = Rc::new(Cell::new(false));
    let f2 = fired.clone();
    el.borrow_mut().set_timeout(20, move |_| f2.set(true));

    let err = driver.advance_by(100);
    assert!(err.is_err(), "panicking atom must surface as an error");
    assert!(!fired.get(), "the later timer must not have fired yet");
    assert_eq!(el.borrow().now(), 10, "time stopped at the failure point");
    assert_eq!(el.borrow().pending(), 1, "queued timer survives the error");

    let ok = driver.advance_by(100).unwrap();
    assert!(fired.get(), "subsequent advance continues from the failure point");
    assert!(ok.is_empty() || !ok.is_empty()); // reactions drained without error
    assert!(!driver.machine.borrow().is_poisoned());
}
