//! Async/synchronous blending tests: the paper's `Timer` module, the
//! simulated authentication service, automatic kill-cleanup, and stale
//! notification discarding (§2.2.4–§2.2.5).

use hiphop_core::prelude::*;
use hiphop_eventloop::stdlib::{service_async, timer_module};
use hiphop_eventloop::Driver;
use hiphop_runtime::machine_for;
use std::cell::Cell;
use std::rc::Rc;

#[test]
fn timer_ticks_every_virtual_second() {
    let main = Module::new("Main")
        .inout(SignalDecl::new("time", Direction::InOut).with_init(0i64))
        .body(Stmt::run("Timer"));
    let el = Rc::new(std::cell::RefCell::new(hiphop_eventloop::EventLoop::new()));
    let mut reg = ModuleRegistry::new();
    reg.register(timer_module(el.clone(), "time", 1000));
    let machine = machine_for(&main, &reg).expect("compiles");
    let driver = Driver {
        machine: Rc::new(std::cell::RefCell::new(machine)),
        el,
    };
    driver.react(&[]).unwrap(); // boot: spawns the async, schedules interval
    driver.advance_by(3500).unwrap();
    assert_eq!(
        driver.machine.borrow().nowval("time"),
        Value::Num(3.0),
        "three seconds elapsed"
    );
    driver.advance_by(2000).unwrap();
    assert_eq!(driver.machine.borrow().nowval("time"), Value::Num(5.0));
}

#[test]
fn killed_timer_frees_its_interval() {
    // abort (stop.now) { run Timer }: when the abort kills the async, the
    // kill hook must clearInterval — the paper's automatic resource
    // cleanup.
    let el = Rc::new(std::cell::RefCell::new(hiphop_eventloop::EventLoop::new()));
    let mut reg = ModuleRegistry::new();
    reg.register(timer_module(el.clone(), "time", 1000));
    let main = Module::new("Main")
        .input(SignalDecl::new("stop", Direction::In))
        .inout(SignalDecl::new("time", Direction::InOut).with_init(0i64))
        .body(Stmt::abort(Delay::cond(Expr::now("stop")), Stmt::run("Timer")));
    let machine = machine_for(&main, &reg).expect("compiles");
    let driver = Driver {
        machine: Rc::new(std::cell::RefCell::new(machine)),
        el: el.clone(),
    };
    driver.react(&[]).unwrap();
    driver.advance_by(2500).unwrap();
    assert_eq!(driver.machine.borrow().nowval("time"), Value::Num(2.0));
    assert_eq!(el.borrow().pending(), 1, "interval alive");
    driver.react(&[("stop", Value::Bool(true))]).unwrap();
    assert_eq!(el.borrow().pending(), 0, "kill hook cleared the interval");
    // Time stops advancing.
    driver.advance_by(5000).unwrap();
    assert_eq!(driver.machine.borrow().nowval("time"), Value::Num(2.0));
}

#[test]
fn service_async_completes_with_latency() {
    // Authenticate-style: async connected { authenticateSvc(...) }.
    let el = Rc::new(std::cell::RefCell::new(hiphop_eventloop::EventLoop::new()));
    let body = Stmt::seq([
        service_async(
            el.clone(),
            200,
            "connected",
            |env| env.nowval("name"),
            |payload| Value::Bool(payload.as_str() == Some("joe")),
        ),
        Stmt::if_else(
            Expr::nowval("connected"),
            Stmt::emit_val("connState", Expr::str("connected")),
            Stmt::emit_val("connState", Expr::str("error")),
        ),
    ]);
    let main = Module::new("Main")
        .input(SignalDecl::new("name", Direction::In).with_init("joe"))
        .inout(SignalDecl::new("connected", Direction::InOut))
        .output(SignalDecl::new("connState", Direction::Out).with_init("disconn"))
        .body(body);
    let machine = machine_for(&main, &ModuleRegistry::new()).expect("compiles");
    let driver = Driver {
        machine: Rc::new(std::cell::RefCell::new(machine)),
        el,
    };
    driver.react(&[]).unwrap();
    assert_eq!(
        driver.machine.borrow().nowval("connState"),
        Value::from("disconn"),
        "still authenticating"
    );
    let reactions = driver.advance_by(250).unwrap();
    assert_eq!(reactions.len(), 1, "one completion reaction");
    assert!(reactions[0].present("connected"));
    assert_eq!(
        driver.machine.borrow().nowval("connState"),
        Value::from("connected")
    );
}

#[test]
fn preempted_async_discards_stale_notification() {
    // every (login.now) { async connected { 200ms service } ;
    //                     if connected emit ok }
    // Re-login at t+100 kills the pending request; its reply at t+200 must
    // be dropped; the second reply at t+300 completes. This is exactly the
    // paper's "pending authentications are automatically discarded
    // without needing the counter used in JavaScript" (§2.2.4).
    let el = Rc::new(std::cell::RefCell::new(hiphop_eventloop::EventLoop::new()));
    let completions = Rc::new(Cell::new(0u32));
    let comp = completions.clone();
    let body = Stmt::every(
        Delay::cond(Expr::now("login")),
        Stmt::seq([
            service_async(
                el.clone(),
                200,
                "connected",
                |_| Value::Null,
                move |_| {
                    comp.set(comp.get() + 1);
                    Value::Bool(true)
                },
            ),
            Stmt::emit("sessionStart"),
        ]),
    );
    let main = Module::new("Main")
        .input(SignalDecl::new("login", Direction::In))
        .inout(SignalDecl::new("connected", Direction::InOut))
        .output(SignalDecl::new("sessionStart", Direction::Out))
        .body(body);
    let machine = machine_for(&main, &ModuleRegistry::new()).expect("compiles");
    let driver = Driver {
        machine: Rc::new(std::cell::RefCell::new(machine)),
        el,
    };
    driver.react(&[]).unwrap();
    driver.react(&[("login", Value::Bool(true))]).unwrap(); // t=0: request 1
    driver.advance_by(100).unwrap();
    driver.react(&[("login", Value::Bool(true))]).unwrap(); // t=100: request 2 kills 1
    let r1 = driver.advance_by(150).unwrap(); // t=250: reply 1 arrives, stale
    assert!(
        r1.iter().all(|r| !r.present("sessionStart")),
        "stale reply must not start a session"
    );
    let r2 = driver.advance_by(100).unwrap(); // t=350: reply 2 arrives
    assert!(
        r2.iter().any(|r| r.present("sessionStart")),
        "fresh reply completes"
    );
    assert_eq!(completions.get(), 2, "both timers fired; only one counted");
}

#[test]
fn session_timeout_via_timer_forces_logout() {
    // Session-like: abort (logout.now || time.nowval > 3) { run Timer } ;
    // emit done — the paper's Session module shape (§2.2.5).
    let el = Rc::new(std::cell::RefCell::new(hiphop_eventloop::EventLoop::new()));
    let mut reg = ModuleRegistry::new();
    reg.register(timer_module(el.clone(), "time", 1000));
    let main = Module::new("Main")
        .input(SignalDecl::new("logout", Direction::In))
        .inout(SignalDecl::new("time", Direction::InOut).with_init(0i64))
        .output(SignalDecl::new("done", Direction::Out))
        .body(Stmt::seq([
            Stmt::abort(
                Delay::cond(Expr::now("logout").or(Expr::nowval("time").gt(Expr::num(3.0)))),
                Stmt::run("Timer"),
            ),
            Stmt::emit("done"),
        ]));
    let machine = machine_for(&main, &reg).expect("compiles");
    let driver = Driver {
        machine: Rc::new(std::cell::RefCell::new(machine)),
        el: el.clone(),
    };
    driver.react(&[]).unwrap();
    let reactions = driver.advance_by(10_000).unwrap();
    assert!(
        reactions.iter().any(|r| r.present("done")),
        "timeout forces the session to end"
    );
    // The timer must have been cleaned up at second 4.
    assert_eq!(el.borrow().pending(), 0);
    assert_eq!(driver.machine.borrow().nowval("time"), Value::Num(4.0));
}

#[test]
fn async_suspend_and_resume_hooks_fire_on_edges() {
    use hiphop_core::prelude::*;
    let events = Rc::new(std::cell::RefCell::new(Vec::new()));
    let (e1, e2) = (events.clone(), events.clone());
    let spec = AsyncSpec {
        done_signal: None,
        on_spawn: None,
        on_kill: None,
        on_suspend: Some(AsyncHook::new("s", move |_| {
            e1.borrow_mut().push("suspend")
        })),
        on_resume: Some(AsyncHook::new("r", move |_| {
            e2.borrow_mut().push("resume")
        })),
    };
    let main = Module::new("M")
        .input(SignalDecl::new("freeze", Direction::In))
        .body(Stmt::suspend(
            Delay::cond(Expr::now("freeze")),
            Stmt::async_(spec),
        ));
    let mut m = hiphop_runtime::machine_for(&main, &ModuleRegistry::new()).expect("compiles");
    m.react().unwrap();
    assert!(events.borrow().is_empty());
    // Two consecutive suspended instants: the hook fires only on the edge.
    m.react_with(&[("freeze", Value::Bool(true))]).unwrap();
    m.react_with(&[("freeze", Value::Bool(true))]).unwrap();
    assert_eq!(*events.borrow(), ["suspend"]);
    // Resumption edge.
    m.react().unwrap();
    assert_eq!(*events.borrow(), ["suspend", "resume"]);
    // Steady running: nothing more.
    m.react().unwrap();
    assert_eq!(events.borrow().len(), 2);
    // Another cycle.
    m.react_with(&[("freeze", Value::Bool(true))]).unwrap();
    m.react().unwrap();
    assert_eq!(*events.borrow(), ["suspend", "resume", "suspend", "resume"]);
}
