//! The §2.1 JavaScript-style baseline: the login panel implemented with
//! global state registers and callbacks, as the paper writes it before
//! introducing HipHop.
//!
//! This is the comparison point for the design discussion (§2.3): hidden
//! control dependencies through `Rname`, `Rpasswd`, `RconnState`,
//! `RenableLogin`, `Rintv`, `Rconn`, and components that must call into
//! each other (`authenticate` calls `logout`). The integration tests
//! check it behaves observably like the HipHop version on the same
//! scenarios — and its code shape shows *why* §3's quarantine change
//! would force a rewrite.

use hiphop_eventloop::{EventLoop, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

/// Connection status, the baseline's `RconnState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Never connected.
    Disconn,
    /// Authentication request in flight.
    Connecting,
    /// Session active.
    Connected,
    /// Session ended.
    Disconnected,
    /// Authentication failed.
    Error,
}

struct Registers {
    rname: String,
    rpasswd: String,
    renable_login: bool,
    rconn_state: ConnState,
    rtime: u64,
    rintv: Option<TimerId>,
    rconn: u64,
}

/// The callback-style login application (paper §2.1).
pub struct JsLogin {
    regs: Rc<RefCell<Registers>>,
    el: Rc<RefCell<EventLoop>>,
    auth_latency_ms: u64,
    accept: Rc<dyn Fn(&str, &str) -> bool>,
    max_session_time: u64,
}

impl JsLogin {
    /// Builds the baseline against an event loop and service parameters.
    pub fn new(
        el: Rc<RefCell<EventLoop>>,
        auth_latency_ms: u64,
        accept: Rc<dyn Fn(&str, &str) -> bool>,
        max_session_time: u64,
    ) -> JsLogin {
        JsLogin {
            regs: Rc::new(RefCell::new(Registers {
                rname: String::new(),
                rpasswd: String::new(),
                renable_login: false,
                rconn_state: ConnState::Disconn,
                rtime: 0,
                rintv: None,
                rconn: 0,
            })),
            el,
            auth_latency_ms,
            accept,
            max_session_time,
        }
    }

    fn enable_login_button(r: &Registers) -> bool {
        r.rname.chars().count() >= 2 && r.rpasswd.chars().count() >= 2
    }

    /// `nameKeypress` (paper line 4).
    pub fn name_keypress(&self, value: &str) {
        let mut r = self.regs.borrow_mut();
        r.rname = value.to_owned();
        r.renable_login = Self::enable_login_button(&r);
    }

    /// `passwdKeypress` (paper line 8).
    pub fn passwd_keypress(&self, value: &str) {
        let mut r = self.regs.borrow_mut();
        r.rpasswd = value.to_owned();
        r.renable_login = Self::enable_login_button(&r);
    }

    /// `authenticate` (paper line 12): note how it must *explicitly* call
    /// `logout`, count requests in `Rconn` to discard stale replies, and
    /// update the status register.
    pub fn authenticate(&self) {
        let conn = {
            let mut r = self.regs.borrow_mut();
            r.rconn += 1;
            r.rconn
        };
        self.logout_internal(false);
        self.regs.borrow_mut().rconn_state = ConnState::Connecting;
        let (name, passwd) = {
            let r = self.regs.borrow();
            (r.rname.clone(), r.rpasswd.clone())
        };
        let regs = self.regs.clone();
        let accept = self.accept.clone();
        let max = self.max_session_time;
        self.el.borrow_mut().set_timeout(self.auth_latency_ms, move |el_inner| {
            let ok = accept(&name, &passwd);
            let stale = regs.borrow().rconn != conn;
            if stale {
                return; // paper line 17: `conn === Rconn` check
            }
            if ok {
                // startSession (paper line 19).
                {
                    let mut r = regs.borrow_mut();
                    r.rconn_state = ConnState::Connected;
                    r.rtime = 0;
                }
                let regs2 = regs.clone();
                let id = el_inner.set_interval(1000, move |el_cb| {
                    let timed_out = {
                        let mut r = regs2.borrow_mut();
                        r.rtime += 1;
                        r.rtime > max
                    };
                    if timed_out {
                        // logout() from inside the timer callback; use the
                        // event loop handed to the callback (the shared
                        // RefCell is borrowed while timers run).
                        let mut r = regs2.borrow_mut();
                        r.rconn_state = ConnState::Disconnected;
                        if let Some(id) = r.rintv.take() {
                            el_cb.clear(id);
                        }
                    }
                });
                regs.borrow_mut().rintv = Some(id);
            } else {
                regs.borrow_mut().rconn_state = ConnState::Error;
            }
        });
    }

    fn logout_internal(&self, set_state: bool) {
        let mut r = self.regs.borrow_mut();
        if set_state {
            r.rconn_state = ConnState::Disconnected;
        }
        if let Some(id) = r.rintv.take() {
            self.el.borrow_mut().clear(id);
        }
    }

    /// `logout` (paper line 27).
    pub fn logout(&self) {
        self.logout_internal(true);
    }

    /// Current connection status.
    pub fn conn_state(&self) -> ConnState {
        self.regs.borrow().rconn_state
    }
    /// Whether the login button is enabled.
    pub fn enable_login(&self) -> bool {
        self.regs.borrow().renable_login
    }
    /// Session clock in seconds.
    pub fn time(&self) -> u64 {
        self.regs.borrow().rtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (JsLogin, Rc<RefCell<EventLoop>>) {
        let el = Rc::new(RefCell::new(EventLoop::new()));
        let app = JsLogin::new(
            el.clone(),
            150,
            Rc::new(|n, p| n == "joe" && p == "secret"),
            10,
        );
        (app, el)
    }

    #[test]
    fn mirrors_hiphop_v1_happy_path() {
        let (app, el) = setup();
        app.name_keypress("joe");
        assert!(!app.enable_login());
        app.passwd_keypress("secret");
        assert!(app.enable_login());
        app.authenticate();
        assert_eq!(app.conn_state(), ConnState::Connecting);
        el.borrow_mut().advance_by(200);
        assert_eq!(app.conn_state(), ConnState::Connected);
        el.borrow_mut().advance_by(3000);
        assert_eq!(app.time(), 3);
        app.logout();
        assert_eq!(app.conn_state(), ConnState::Disconnected);
        el.borrow_mut().advance_by(5000);
        assert_eq!(app.time(), 3, "clock stopped after logout");
    }

    #[test]
    fn stale_reply_requires_manual_counter() {
        let (app, el) = setup();
        app.name_keypress("joe");
        app.passwd_keypress("secret");
        app.authenticate();
        el.borrow_mut().advance_by(50);
        app.passwd_keypress("wrong!");
        app.authenticate();
        el.borrow_mut().advance_by(400);
        assert_eq!(
            app.conn_state(),
            ConnState::Error,
            "Rconn discards the stale success"
        );
    }

    #[test]
    fn session_times_out() {
        let (app, el) = setup();
        app.name_keypress("joe");
        app.passwd_keypress("secret");
        app.authenticate();
        el.borrow_mut().advance_by(200);
        el.borrow_mut().advance_by(12_000);
        assert_eq!(app.conn_state(), ConnState::Disconnected);
    }
}
