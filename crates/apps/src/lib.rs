//! The paper's applications, reproduced end-to-end: the login panel (§2),
//! its quarantine evolution (§3), the plain-callback baseline (§2.1), and
//! the Lisinopril medical pillbox (§4.1).

#![warn(missing_docs)]
#![allow(clippy::type_complexity)] // Rc<dyn Fn> service/accept signatures are the API

pub mod baseline;
pub mod login;
pub mod login_v2;
pub mod pillbox;
pub mod pillbox_gui;
