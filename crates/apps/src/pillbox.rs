//! The Lisinopril medical-prescription pillbox (paper §4.1).
//!
//! The reactive program is written in the *textual* HipHop syntax and
//! parsed at startup — exercising the paper's Phase 1 front-end in a real
//! application. The temporal rules come from the doctor Q&A of §4.1.1:
//!
//! - one tablet daily, preferred window 8PM–11PM;
//! - hard wall of 8 h between doses (`TryTooCloseError`);
//! - more than 34 h without a dose is a serious error
//!   (`NoDoseSinceTooLongError`, sustained);
//! - warn when approaching the limit (Try button alerts at 30 h);
//! - two-press protocol: `Try` (checks timing, delivers) then `Conf`
//!   (asserts swallowed), with the Confirm button alerting when late;
//! - all events are logged.
//!
//! Time unit: one reaction per minute (`Mn` tick), with `TimeOfDay` in
//! minutes of day (0–1439). The delays in the source are derived from the
//! prescription: phase boundaries are measured from the end of the 8 h
//! wall, so `TryDelay = 30 h − 8 h = 1320 min` and the no-dose error fires
//! `34 h − 8 h = 1560 min` into a cycle.

use hiphop_core::module::{Module, ModuleRegistry};
use hiphop_core::value::Value;
use hiphop_lang::{parse_program, HostRegistry};
use hiphop_runtime::{Machine, Reaction, RuntimeError};

/// Minutes in the 8-hour wall between doses.
pub const MIN_DOSE_INTERVAL: u64 = 8 * 60;
/// Minutes until the no-dose error, measured from the end of the wall.
pub const NO_DOSE_ERROR_AFTER: u64 = 34 * 60 - MIN_DOSE_INTERVAL;
/// Minutes until the Try button alerts, measured from the end of the wall.
pub const TRY_ALERT_AFTER: u64 = 30 * 60 - MIN_DOSE_INTERVAL;
/// Minutes the Confirm button waits before alerting.
pub const CONF_ALERT_AFTER: u64 = 10;
/// Dose window start, minutes of day (8PM).
pub const WINDOW_START: u64 = 20 * 60;
/// Dose window end, minutes of day (11PM).
pub const WINDOW_END: u64 = 23 * 60;

/// The pillbox program, in concrete HipHop syntax (paper §4.1.2).
pub const PILLBOX_SRC: &str = r#"
hiphop module Button(var d, in Tick, in B, out Active, out Alert) {
   emit Active(true); emit Alert(false);
   abort (B.now) {
      await count(d, Tick.now);
      do { emit Alert(true); } every (Tick.now)
   }
   emit Alert(false); emit Active(false);
}

hiphop module Lisinopril(in Mn, in TimeOfDay = 0, in Try, in Conf,
                         out TryActive = false, out TryAlert = false,
                         out ConfActive = false, out ConfAlert = false,
                         out DeliverDose, out RecordDose = -1,
                         out TryNotInWindowWarning,
                         out NoDoseSinceTooLongError, out TryTooCloseError,
                         out InDoseWindow = false) {
   fork {
      // Clock component: maintain the 8PM-11PM window flag.
      do {
         emit InDoseWindow(TimeOfDay.nowval >= 1200 && TimeOfDay.nowval < 1380);
      } every (Mn.now)
   } par {
      loop {
         DoseOK: fork {
            // Phase 1: wait for Try; alert when the last dose ages.
            run Button(d = 1320, Tick as Mn, B as Try,
                       Active as TryActive, Alert as TryAlert);
            // Try received: deliver, but warn if out of the dose window.
            emit DeliverDose();
            hop { log("dose delivered at minute " + TimeOfDay.nowval); }
            if (!InDoseWindow.nowval) {
               emit TryNotInWindowWarning();
               hop { log("warning: delivery outside the 8PM-11PM window"); }
            }
            // Phase 2: wait for confirmation, keep alerting if late.
            run Button(d = 10, Tick as Mn, B as Conf,
                       Active as ConfActive, Alert as ConfAlert);
            // Confirmation received.
            emit RecordDose(TimeOfDay.nowval);
            hop { log("dose confirmed at minute " + TimeOfDay.nowval); }
            break DoseOK;
         } par {
            // In phases 1-2: error if too long since the last dose.
            await count(1560, Mn.now);
            hop { log("ERROR: more than 34h since the last dose"); }
            sustain NoDoseSinceTooLongError();
         }
         // Phase 3: enforce the 8h wall before allowing Try again.
         abort count(480, Mn.now) {
            every (Try.now) {
               emit TryTooCloseError();
               hop { log("ERROR: try too close to the previous dose"); }
            }
         }
      }
   }
}
"#;

/// Parses the pillbox program and returns (main module, registry).
///
/// # Panics
///
/// Panics if the embedded source does not parse (a build-time invariant,
/// covered by tests).
pub fn modules() -> (Module, ModuleRegistry) {
    parse_program(PILLBOX_SRC, "Lisinopril", &HostRegistry::new())
        .expect("embedded pillbox source parses")
}

/// A driving harness: one reaction per minute, with the GUI-relevant
/// outputs exposed as methods.
pub struct Pillbox {
    machine: Machine,
    minute_of_day: u64,
}

impl Pillbox {
    /// Compiles the program and boots the machine; the clock starts at
    /// `start_minute_of_day` (e.g. `19 * 60` for 7PM).
    ///
    /// # Errors
    ///
    /// Propagates compile/runtime errors.
    pub fn new(start_minute_of_day: u64) -> Result<Pillbox, Box<dyn std::error::Error>> {
        let (main, reg) = modules();
        let compiled = hiphop_compiler::compile_module(&main, &reg)?;
        let mut machine = Machine::new(compiled.circuit)?;
        machine.react()?; // boot instant
        Ok(Pillbox {
            machine,
            minute_of_day: start_minute_of_day,
        })
    }

    /// Wraps an already-configured machine (engine selected, trace sinks
    /// attached), boots it, and starts the clock at `start_minute_of_day`.
    /// This is how the golden-trace tests capture the boot instant: the
    /// plain [`Pillbox::new`] boots before a sink can be attached.
    ///
    /// # Errors
    ///
    /// Propagates the boot-reaction error.
    pub fn from_machine(
        mut machine: Machine,
        start_minute_of_day: u64,
    ) -> Result<Pillbox, RuntimeError> {
        machine.react()?;
        Ok(Pillbox {
            machine,
            minute_of_day: start_minute_of_day,
        })
    }

    fn minute_inputs(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("Mn", Value::Bool(true)),
            ("TimeOfDay", Value::from(self.minute_of_day as i64)),
        ]
    }

    /// Advances one minute.
    ///
    /// # Errors
    ///
    /// Propagates reaction errors.
    pub fn tick(&mut self) -> Result<Reaction, RuntimeError> {
        self.minute_of_day = (self.minute_of_day + 1) % 1440;
        let inputs = self.minute_inputs();
        self.machine.react_with(&inputs)
    }

    /// Advances `n` minutes, returning the last reaction.
    ///
    /// # Errors
    ///
    /// Propagates reaction errors.
    pub fn advance(&mut self, n: u64) -> Result<Reaction, RuntimeError> {
        let mut last = self.tick()?;
        for _ in 1..n {
            last = self.tick()?;
        }
        Ok(last)
    }

    /// Presses the Try button (same instant as a clock tick is possible in
    /// a GUI; here we deliver it between ticks as a button press).
    ///
    /// # Errors
    ///
    /// Propagates reaction errors.
    pub fn press_try(&mut self) -> Result<Reaction, RuntimeError> {
        self.machine.react_with(&[
            ("Try", Value::Bool(true)),
            ("TimeOfDay", Value::from(self.minute_of_day as i64)),
        ])
    }

    /// Presses the Confirm button.
    ///
    /// # Errors
    ///
    /// Propagates reaction errors.
    pub fn press_conf(&mut self) -> Result<Reaction, RuntimeError> {
        self.machine.react_with(&[
            ("Conf", Value::Bool(true)),
            ("TimeOfDay", Value::from(self.minute_of_day as i64)),
        ])
    }

    /// Current minute of day.
    pub fn minute_of_day(&self) -> u64 {
        self.minute_of_day
    }
    /// Whether the Try button is active.
    pub fn try_active(&self) -> bool {
        self.machine.nowval("TryActive").truthy()
    }
    /// Whether the Try button alerts (approaching 34 h).
    pub fn try_alert(&self) -> bool {
        self.machine.nowval("TryAlert").truthy()
    }
    /// Whether the Confirm button is active.
    pub fn conf_active(&self) -> bool {
        self.machine.nowval("ConfActive").truthy()
    }
    /// Whether the Confirm button alerts (confirmation late).
    pub fn conf_alert(&self) -> bool {
        self.machine.nowval("ConfAlert").truthy()
    }
    /// Whether we are in the 8PM–11PM window.
    pub fn in_dose_window(&self) -> bool {
        self.machine.nowval("InDoseWindow").truthy()
    }
    /// The event log.
    pub fn log(&self) -> &[String] {
        self.machine.log()
    }
    /// Access to the underlying machine (for the GUI layer).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
    /// Mutable access to the underlying machine (sink management).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }
}

impl std::fmt::Debug for Pillbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pillbox(minute {})", self.minute_of_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_source_parses_and_compiles() {
        let (main, reg) = modules();
        assert_eq!(main.name, "Lisinopril");
        let compiled = hiphop_compiler::compile_module(&main, &reg).expect("compiles");
        assert!(compiled.circuit.stats().nets > 100);
    }

    #[test]
    fn nominal_dose_cycle() {
        // Start at 7PM; take the dose at 8:30PM, confirm 2 minutes later.
        let mut p = Pillbox::new(19 * 60).expect("builds");
        assert!(p.try_active());
        assert!(!p.in_dose_window());
        p.advance(90).unwrap(); // 8:30PM
        assert!(p.in_dose_window());
        let r = p.press_try().unwrap();
        assert!(r.present("DeliverDose"));
        assert!(
            !r.present("TryNotInWindowWarning"),
            "8:30PM is inside the window"
        );
        assert!(!p.try_active(), "Try goes inactive once pressed");
        assert!(p.conf_active(), "Confirm becomes active");
        p.advance(2).unwrap();
        let r = p.press_conf().unwrap();
        assert!(r.present("RecordDose"));
        assert_eq!(r.value("RecordDose"), Value::from((20 * 60 + 32) as i64));
        assert!(!p.conf_active());
        assert!(p.log().iter().any(|l| l.contains("dose confirmed")));
    }

    #[test]
    fn out_of_window_delivery_warns() {
        let mut p = Pillbox::new(10 * 60).expect("builds"); // 10AM
        p.advance(5).unwrap();
        let r = p.press_try().unwrap();
        assert!(r.present("DeliverDose"), "delivery still allowed");
        assert!(
            r.present("TryNotInWindowWarning"),
            "but the warning fires (doctor: 'no big deal provided...')"
        );
    }

    #[test]
    fn eight_hour_wall_is_enforced() {
        let mut p = Pillbox::new(20 * 60).expect("builds"); // 8PM
        p.advance(10).unwrap();
        p.press_try().unwrap();
        p.press_conf().unwrap();
        // Phase 3: Try presses are errors for 480 minutes.
        p.advance(60).unwrap();
        let r = p.press_try().unwrap();
        assert!(r.present("TryTooCloseError"));
        assert!(!r.present("DeliverDose"));
        // After the wall, Try works again.
        p.advance(480).unwrap();
        let r = p.press_try().unwrap();
        assert!(r.present("DeliverDose"));
        assert!(!r.present("TryTooCloseError"));
    }

    #[test]
    fn confirm_alerts_when_late() {
        let mut p = Pillbox::new(20 * 60).expect("builds");
        p.advance(10).unwrap();
        p.press_try().unwrap();
        assert!(!p.conf_alert());
        p.advance(CONF_ALERT_AFTER + 1).unwrap();
        assert!(p.conf_alert(), "confirmation is late");
        // Confirming clears the alert.
        p.press_conf().unwrap();
        assert!(!p.conf_alert());
    }

    #[test]
    fn try_button_alerts_at_thirty_hours() {
        let mut p = Pillbox::new(0).expect("builds");
        p.advance(TRY_ALERT_AFTER).unwrap();
        assert!(p.try_alert(), "approaching the 34h limit");
        assert!(p.try_active(), "still pressable");
    }

    #[test]
    fn no_dose_error_after_thirty_four_hours() {
        let mut p = Pillbox::new(0).expect("builds");
        let r = p.advance(NO_DOSE_ERROR_AFTER - 1).unwrap();
        assert!(!r.present("NoDoseSinceTooLongError"));
        let r = p.tick().unwrap();
        assert!(r.present("NoDoseSinceTooLongError"));
        // Sustained until the dose is finally taken and confirmed.
        let r = p.tick().unwrap();
        assert!(r.present("NoDoseSinceTooLongError"));
        p.press_try().unwrap();
        p.press_conf().unwrap();
        let r = p.tick().unwrap();
        assert!(
            !r.present("NoDoseSinceTooLongError"),
            "break DoseOK weakly preempts the error branch"
        );
        assert!(p.log().iter().any(|l| l.contains("ERROR: more than 34h")));
    }

    #[test]
    fn dose_window_flag_tracks_clock() {
        let mut p = Pillbox::new(19 * 60 + 58).expect("builds");
        p.advance(1).unwrap(); // 19:59
        assert!(!p.in_dose_window());
        p.advance(1).unwrap(); // 20:00
        assert!(p.in_dose_window());
        p.advance(179).unwrap(); // 22:59
        assert!(p.in_dose_window());
        p.advance(1).unwrap(); // 23:00
        assert!(!p.in_dose_window());
    }
}
