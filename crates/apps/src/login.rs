//! The paper's running example (§2): the login panel, V1.
//!
//! Modules `Main`, `Identity`, `Authenticate`, `Session` exactly as in
//! §2.2.2–§2.2.5, with the standard-library `Timer` and a simulated
//! authentication service standing in for the OAuth round trip.

use hiphop_core::prelude::*;
use hiphop_eventloop::stdlib::{service_async, timer_module};
use hiphop_eventloop::EventLoop;
use std::cell::RefCell;
use std::rc::Rc;

/// Authentication-service simulation parameters (substitute for the
/// paper's remote `authenticateSvc`).
#[derive(Clone)]
pub struct AuthConfig {
    /// Round-trip latency in virtual milliseconds.
    pub latency_ms: u64,
    /// Decides whether a (name, password) pair is accepted.
    pub accept: Rc<dyn Fn(&str, &str) -> bool>,
}

impl AuthConfig {
    /// Accepts exactly one credential pair after `latency_ms`.
    pub fn single_user(latency_ms: u64, name: &str, passwd: &str) -> AuthConfig {
        let (n, p) = (name.to_owned(), passwd.to_owned());
        AuthConfig {
            latency_ms,
            accept: Rc::new(move |a, b| a == n && b == p),
        }
    }
}

impl std::fmt::Debug for AuthConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuthConfig")
            .field("latency_ms", &self.latency_ms)
            .finish()
    }
}

/// Maximum session duration in seconds (the paper's `MAX_SESSION_TIME`).
pub const MAX_SESSION_TIME: f64 = 10.0;

/// Combine function for `connState`: keep the most *severe* state when
/// two emissions coincide. The paper's §3 `MainV2` emits
/// `connState("quarantine")` in the very instant the weakaborted `Main`
/// emits `connState("error")`; a combine function is required for such
/// double emissions (paper §2.2.1), and severity priority is the
/// deterministic, associative-commutative choice.
pub fn conn_state_combine() -> Combine {
    fn rank(v: &Value) -> u8 {
        match v.as_str() {
            Some("quarantine") => 5,
            Some("error") => 4,
            Some("connecting") => 3,
            Some("connected") => 2,
            Some("disconnected") => 1,
            _ => 0,
        }
    }
    Combine::Host(Rc::new(|a, b| {
        if rank(a) >= rank(b) {
            a.clone()
        } else {
            b.clone()
        }
    }))
}

/// §2.2.3 — `Identity`: detects when login becomes possible.
pub fn identity_module() -> Module {
    Module::new("Identity")
        .input(SignalDecl::new("name", Direction::In))
        .input(SignalDecl::new("passwd", Direction::In))
        .output(SignalDecl::new("enableLogin", Direction::Out).with_init(false))
        .body(Stmt::loop_each(
            Delay::cond(Expr::now("name").or(Expr::now("passwd"))),
            Stmt::emit_val(
                "enableLogin",
                Expr::nowval("name")
                    .field("length")
                    .ge(Expr::num(2.0))
                    .and(Expr::nowval("passwd").field("length").ge(Expr::num(2.0))),
            ),
        ))
}

/// §2.2.4 — `Authenticate`: asks the service, emits `connected` with the
/// result.
pub fn authenticate_module(el: Rc<RefCell<EventLoop>>, auth: &AuthConfig) -> Module {
    let accept = auth.accept.clone();
    Module::new("Authenticate")
        .input(SignalDecl::new("name", Direction::In))
        .input(SignalDecl::new("passwd", Direction::In))
        .output(SignalDecl::new("connState", Direction::Out))
        .inout(SignalDecl::new("connected", Direction::InOut))
        .body(Stmt::seq([
            Stmt::emit_val("connState", Expr::str("connecting")),
            service_async(
                el,
                auth.latency_ms,
                "connected",
                // Capture the credentials at request time, as the paper's
                // `authenticateSvc(name.nowval, passwd.nowval)` does.
                |env| {
                    Value::Arr(vec![env.nowval("name"), env.nowval("passwd")])
                },
                move |payload| {
                    let (n, p) = match payload {
                        Value::Arr(items) if items.len() == 2 => (
                            items[0].to_display_string(),
                            items[1].to_display_string(),
                        ),
                        _ => (String::new(), String::new()),
                    };
                    Value::Bool(accept(&n, &p))
                },
            ),
        ]))
}

/// §2.2.5 — `Session`: runs a session until logout or timeout.
pub fn session_module() -> Module {
    Module::new("Session")
        .inout(SignalDecl::new("connState", Direction::InOut))
        .inout(SignalDecl::new("time", Direction::InOut).with_init(0i64))
        .inout(SignalDecl::new("logout", Direction::InOut))
        .body(Stmt::seq([
            Stmt::emit_val("connState", Expr::str("connected")),
            Stmt::abort(
                Delay::cond(
                    Expr::now("logout").or(Expr::nowval("time").gt(Expr::num(MAX_SESSION_TIME))),
                ),
                Stmt::run("Timer"),
            ),
            Stmt::emit_val("connState", Expr::str("disconnected")),
        ]))
}

/// §2.2.2 — `Main`: the toplevel orchestration.
pub fn main_module() -> Module {
    Module::new("Main")
        .input(SignalDecl::new("name", Direction::In).with_init(""))
        .input(SignalDecl::new("passwd", Direction::In).with_init(""))
        .input(SignalDecl::new("login", Direction::In))
        .input(SignalDecl::new("logout", Direction::In))
        .output(
            SignalDecl::new("enableLogin", Direction::Out)
                .with_init(false)
                .with_combine(Combine::And),
        )
        .output(
            SignalDecl::new("connState", Direction::Out)
                .with_init("disconn")
                .with_combine(conn_state_combine()),
        )
        .inout(SignalDecl::new("time", Direction::InOut).with_init(0i64))
        .inout(SignalDecl::new("connected", Direction::InOut))
        .body(Stmt::par([
            Stmt::run("Identity"),
            Stmt::every(
                Delay::cond(Expr::now("login")),
                Stmt::seq([
                    Stmt::run("Authenticate"),
                    Stmt::if_else(
                        Expr::nowval("connected"),
                        Stmt::run("Session"),
                        Stmt::emit_val("connState", Expr::str("error")),
                    ),
                ]),
            ),
        ]))
}

/// Builds the complete V1 registry (Main + submodules + Timer) against an
/// event loop and service configuration.
pub fn build_v1(
    el: Rc<RefCell<EventLoop>>,
    auth: &AuthConfig,
) -> (Module, ModuleRegistry) {
    let mut reg = ModuleRegistry::new();
    reg.register(identity_module());
    reg.register(authenticate_module(el.clone(), auth));
    reg.register(session_module());
    reg.register(timer_module(el, "time", 1000));
    (main_module(), reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiphop_eventloop::Driver;
    use hiphop_runtime::machine_for;

    fn driver() -> Driver {
        let el = Rc::new(RefCell::new(EventLoop::new()));
        let auth = AuthConfig::single_user(150, "joe", "secret");
        let (main, reg) = build_v1(el.clone(), &auth);
        let machine = machine_for(&main, &reg).expect("login V1 compiles");
        Driver {
            machine: Rc::new(RefCell::new(machine)),
            el,
        }
    }

    #[test]
    fn enable_login_follows_inputs() {
        let d = driver();
        d.react(&[]).unwrap();
        let r = d.react(&[("name", Value::from("jo"))]).unwrap();
        assert_eq!(r[0].value("enableLogin"), Value::Bool(false));
        let r = d.react(&[("passwd", Value::from("secret"))]).unwrap();
        assert_eq!(r[0].value("enableLogin"), Value::Bool(true));
        let r = d.react(&[("passwd", Value::from("s"))]).unwrap();
        assert_eq!(r[0].value("enableLogin"), Value::Bool(false));
    }

    #[test]
    fn successful_login_starts_session_and_clock() {
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connecting")
        );
        d.advance_by(200).unwrap(); // service replies
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connected")
        );
        d.advance_by(3000).unwrap();
        assert_eq!(d.machine.borrow().nowval("time"), Value::Num(3.0));
    }

    #[test]
    fn wrong_password_reports_error() {
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("nope!"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(200).unwrap();
        assert_eq!(d.machine.borrow().nowval("connState"), Value::from("error"));
    }

    #[test]
    fn logout_ends_session() {
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(200).unwrap();
        d.advance_by(2000).unwrap();
        d.react(&[("logout", Value::Bool(true))]).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("disconnected")
        );
        // The session clock stopped (its Timer was cleaned up).
        assert_eq!(d.el.borrow().pending(), 0);
    }

    #[test]
    fn session_times_out() {
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(200).unwrap();
        d.advance_by((MAX_SESSION_TIME as u64 + 2) * 1000).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("disconnected")
        );
    }

    #[test]
    fn relogin_during_session_restarts_authentication() {
        // §2: "During an active session, clicking login causes immediate
        // logout and restart of the login phase."
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(200).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connected")
        );
        // Re-login: Authenticate restarts, session timer must be freed.
        d.react(&[("login", Value::Bool(true))]).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connecting")
        );
        d.advance_by(200).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connected")
        );
    }

    #[test]
    fn relogin_before_reply_discards_first_request() {
        let d = driver();
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(50).unwrap();
        // Change password to a wrong one and re-login before the first
        // (correct) reply lands: the stale success must be dropped.
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(400).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("error"),
            "only the second (failing) authentication counts"
        );
    }
}
