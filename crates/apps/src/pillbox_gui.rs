//! The pillbox web GUI (paper §4.1.1 design points):
//!
//! 1. "A time display shows a minute-base clock with background green
//!    during the 8PM-11PM period and orange outside this period; another
//!    time display shows when the previous dose was taken; two buttons
//!    Try and Confirm control tablet delivery and confirmation; a text
//!    display shows errors and warnings."
//!
//! The page is built on the reactive DOM substrate: every display is a
//! binding over the machine's outputs, so it updates after each reaction
//! without imperative GUI code.

use crate::pillbox::Pillbox;
use hiphop_dom::{Document, NodeId};

/// The pillbox page, bound to a [`Pillbox`] machine.
pub struct PillboxGui {
    /// The document.
    pub doc: Document,
    /// The Try button node.
    pub try_button: NodeId,
    /// The Confirm button node.
    pub conf_button: NodeId,
}

impl PillboxGui {
    /// Builds the page (the machine is read at render time).
    pub fn new() -> PillboxGui {
        let mut doc = Document::new();
        let root = doc.root();

        let clock = doc.element("div", &[("id", "clock")]);
        doc.bind_attr(clock, "class", |m| {
            if m.nowval("InDoseWindow").truthy() {
                "green".to_owned()
            } else {
                "orange".to_owned()
            }
        });
        doc.react_text(clock, |m| {
            let minute = m.nowval("TimeOfDay").as_num() as u64;
            format!("{:02}:{:02}", minute / 60 % 24, minute % 60)
        });

        let last_dose = doc.element("div", &[("id", "last-dose")]);
        doc.react_text(last_dose, |m| {
            let v = m.nowval("RecordDose").as_num();
            if v < 0.0 {
                "last dose: —".to_owned()
            } else {
                let minute = v as u64;
                format!("last dose: {:02}:{:02}", minute / 60 % 24, minute % 60)
            }
        });

        let try_button = doc.element("button", &[("id", "try")]);
        doc.set_text(try_button, "Try");
        doc.bind_attr(try_button, "disabled", |m| {
            (!m.nowval("TryActive").truthy()).to_string()
        });
        doc.bind_attr(try_button, "class", |m| {
            if m.nowval("TryAlert").truthy() {
                "blinking-red".to_owned()
            } else {
                "normal".to_owned()
            }
        });

        let conf_button = doc.element("button", &[("id", "confirm")]);
        doc.set_text(conf_button, "Confirm");
        doc.bind_attr(conf_button, "disabled", |m| {
            (!m.nowval("ConfActive").truthy()).to_string()
        });
        doc.bind_attr(conf_button, "class", |m| {
            if m.nowval("ConfAlert").truthy() {
                "blinking-red".to_owned()
            } else {
                "normal".to_owned()
            }
        });

        let messages = doc.element("div", &[("id", "messages")]);
        doc.react_text(messages, |m| {
            let mut msgs = Vec::new();
            if m.present("TryNotInWindowWarning") {
                msgs.push("warning: outside the 8PM-11PM window");
            }
            if m.present("TryTooCloseError") {
                msgs.push("ERROR: less than 8h since the previous dose");
            }
            if m.present("NoDoseSinceTooLongError") {
                msgs.push("ERROR: more than 34h without a dose");
            }
            msgs.join("; ")
        });

        for n in [clock, last_dose, try_button, conf_button, messages] {
            doc.append(root, n);
        }
        PillboxGui {
            doc,
            try_button,
            conf_button,
        }
    }

    /// Renders the page against the pillbox machine.
    pub fn render(&self, pillbox: &Pillbox) -> String {
        self.doc.render(pillbox.machine())
    }
}

impl Default for PillboxGui {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_background_follows_the_window() {
        let mut p = Pillbox::new(19 * 60 + 58).expect("builds");
        let gui = PillboxGui::new();
        p.advance(1).unwrap(); // 19:59
        assert!(gui.render(&p).contains("class=\"orange\""));
        p.advance(1).unwrap(); // 20:00
        let html = gui.render(&p);
        assert!(html.contains("class=\"green\""), "{html}");
        assert!(html.contains(">20:00<"), "{html}");
    }

    #[test]
    fn buttons_reflect_protocol_state() {
        let mut p = Pillbox::new(20 * 60).expect("builds");
        p.advance(5).unwrap();
        let gui = PillboxGui::new();
        let html = gui.render(&p);
        assert!(html.contains("id=\"try\""));
        // Try enabled, Confirm disabled before the press.
        assert!(html.contains("id=\"try\" class=\"normal\" disabled=\"false\""), "{html}");
        assert!(html.contains("id=\"confirm\" class=\"normal\" disabled=\"true\""), "{html}");
        p.press_try().unwrap();
        let html = gui.render(&p);
        assert!(html.contains("id=\"try\" class=\"normal\" disabled=\"true\""), "{html}");
        assert!(html.contains("id=\"confirm\" class=\"normal\" disabled=\"false\""), "{html}");
        // Dawdle: Confirm blinks.
        p.advance(15).unwrap();
        assert!(gui.render(&p).contains("blinking-red"));
        p.press_conf().unwrap();
        let html = gui.render(&p);
        assert!(html.contains("last dose: 20:20"), "{html}");
    }

    #[test]
    fn error_messages_appear_in_the_text_display() {
        let mut p = Pillbox::new(20 * 60).expect("builds");
        p.advance(5).unwrap();
        p.press_try().unwrap();
        p.press_conf().unwrap();
        p.advance(30).unwrap();
        let gui = PillboxGui::new();
        // Too-early try: the reaction's error signal shows in the render
        // done right after the press.
        p.press_try().unwrap();
        let html = gui.render(&p);
        assert!(html.contains("less than 8h"), "{html}");
    }
}
