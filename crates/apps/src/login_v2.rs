//! Login panel 2.0 (§3): quarantine after repeated failed logins.
//!
//! The point of the paper's §3: V2 *reuses the unmodified V1 `Main`*,
//! adding only the `Freeze` module and a `MainV2` wrapper — where the
//! JavaScript version required touching almost every component.
//!
//! `MainV2` must use `weakabort`: a strong `abort` would create the
//! causality deadlock the paper describes ("Main would emit connected
//! (false) that would provoke emit(freeze), which itself would prevent
//! Main to execute"). [`main_v2_with`] exposes both variants so the E5
//! experiment can demonstrate the deadlock detection.

use crate::login::{build_v1, AuthConfig};
use hiphop_core::prelude::*;
use hiphop_eventloop::stdlib::timer_module;
use hiphop_eventloop::EventLoop;
use std::cell::RefCell;
use std::rc::Rc;

/// §3 — `Freeze`: emits `freeze` after `attempts` unsuccessful
/// connections, `restart` when the quarantine timer exceeds `max`.
pub fn freeze_module() -> Module {
    Module::new("Freeze")
        .var(VarDecl::new("max"))
        .var(VarDecl::new("attempts"))
        .inout(SignalDecl::new("sig", Direction::InOut))
        .inout(SignalDecl::new("tmo", Direction::InOut).with_init(0i64))
        .inout(SignalDecl::new("freeze", Direction::InOut))
        .inout(SignalDecl::new("restart", Direction::InOut))
        .body(Stmt::loop_each(
            Delay::cond(Expr::now("sig").and(Expr::nowval("sig"))),
            Stmt::seq([
                Stmt::await_(Delay::count(Expr::var("attempts"), Expr::now("sig"))),
                Stmt::emit("freeze"),
                // The quarantine clock is its own Timer instance bound to
                // `tmo`. Host hooks (the Timer's setInterval callback)
                // capture their signal name lexically, so the timer is
                // *constructed* on `tmo` rather than renamed by `run`
                // (see DESIGN.md §7 on host-closure renaming).
                Stmt::abort(
                    Delay::cond(Expr::nowval("tmo").gt(Expr::var("max"))),
                    Stmt::run("QuarantineTimer"),
                ),
                Stmt::emit("restart"),
            ]),
        ))
}

/// §3 — `MainV2`: V1 `Main` under quarantine control. `strong_abort`
/// replaces the `weakabort` with `abort`, reproducing the causality
/// deadlock the paper warns about.
pub fn main_v2_with(strong_abort: bool) -> Module {
    let abort_main = Stmt::Abort {
        delay: Delay::cond(Expr::now("freeze")),
        weak: !strong_abort,
        body: Box::new(Stmt::run("Main")),
        loc: Loc::synthetic(),
    };
    Module::new("MainV2")
        .inout(SignalDecl::new("tmo", Direction::InOut).with_init(0i64))
        .implements(&crate::login::main_module())
        .body(Stmt::local(
            vec![
                SignalDecl::new("freeze", Direction::Local),
                SignalDecl::new("restart", Direction::Local),
            ],
            Stmt::par([
                Stmt::loop_(Stmt::seq([
                    abort_main,
                    Stmt::emit_val("connState", Expr::str("quarantine")),
                    Stmt::emit_val("enableLogin", Expr::bool(false)),
                    Stmt::await_(Delay::cond(Expr::now("restart"))),
                    Stmt::emit_val("connState", Expr::str("disconnected")),
                ])),
                Stmt::run_with(
                    "Freeze",
                    vec![
                        RunBind::Var {
                            name: "max".into(),
                            value: Expr::num(5.0),
                        },
                        RunBind::Var {
                            name: "attempts".into(),
                            value: Expr::num(3.0),
                        },
                        RunBind::Signal {
                            inner: "sig".into(),
                            outer: "connected".into(),
                        },
                    ],
                ),
            ]),
        ))
}

/// Builds the complete V2 registry: V1 modules (unchanged!) + `Freeze`.
pub fn build_v2(
    el: Rc<RefCell<EventLoop>>,
    auth: &AuthConfig,
    strong_abort: bool,
) -> (Module, ModuleRegistry) {
    let (main_v1, mut reg) = build_v1(el.clone(), auth);
    reg.register(main_v1); // MainV2 runs Main by name
    reg.register(freeze_module());
    // Freeze's quarantine clock: a Timer instance ticking `tmo`.
    let mut qt = timer_module(el, "tmo", 1000);
    qt.name = "QuarantineTimer".into();
    reg.register(qt);
    (main_v2_with(strong_abort), reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiphop_eventloop::Driver;
    use hiphop_runtime::{machine_for, RuntimeError};

    fn driver(strong: bool) -> Result<Driver, hiphop_compiler::CompileError> {
        let el = Rc::new(RefCell::new(EventLoop::new()));
        let auth = AuthConfig::single_user(100, "joe", "secret");
        let (main, reg) = build_v2(el.clone(), &auth, strong);
        let machine = machine_for(&main, &reg)?;
        Ok(Driver {
            machine: Rc::new(RefCell::new(machine)),
            el,
        })
    }

    fn fail_login(d: &Driver) {
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(150).unwrap();
    }

    #[test]
    fn three_failures_trigger_quarantine() {
        let d = driver(false).expect("compiles");
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        fail_login(&d);
        assert_eq!(d.machine.borrow().nowval("connState"), Value::from("error"));
        fail_login(&d);
        fail_login(&d);
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("quarantine"),
            "third failure freezes the panel"
        );
        assert_eq!(
            d.machine.borrow().nowval("enableLogin"),
            Value::Bool(false)
        );
        // During quarantine, login clicks do nothing.
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(200).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("quarantine")
        );
    }

    #[test]
    fn quarantine_ends_after_timeout_and_login_works_again() {
        let d = driver(false).expect("compiles");
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        for _ in 0..3 {
            fail_login(&d);
        }
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("quarantine")
        );
        // Quarantine lasts until tmo > 5 seconds.
        d.advance_by(7000).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("disconnected"),
            "quarantine over"
        );
        // Login works again (with the right password now).
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        d.react(&[("login", Value::Bool(true))]).unwrap();
        d.advance_by(150).unwrap();
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connected")
        );
    }

    #[test]
    fn successful_login_resets_the_failure_count() {
        let d = driver(false).expect("compiles");
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        fail_login(&d);
        fail_login(&d);
        // A success resets Freeze's counter...
        d.react(&[("passwd", Value::from("secret"))]).unwrap();
        fail_login(&d);
        assert_eq!(
            d.machine.borrow().nowval("connState"),
            Value::from("connected")
        );
        // ...so two more failures are again not enough to freeze.
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        fail_login(&d);
        fail_login(&d);
        assert_ne!(
            d.machine.borrow().nowval("connState"),
            Value::from("quarantine")
        );
    }

    #[test]
    fn strong_abort_variant_deadlocks_at_freeze_instant() {
        // The paper §3: "Using abort would provoke a causality problem
        // leading to microscheduling deadlocks … detected and an error
        // message generated."
        let d = driver(true).expect("the strong variant still compiles");
        d.react(&[]).unwrap();
        d.react(&[("name", Value::from("joe"))]).unwrap();
        d.react(&[("passwd", Value::from("wrong!"))]).unwrap();
        // The deadlock is *constructive*: at any instant where `connected`
        // could be emitted, its status needs the async's RES, which needs
        // `freeze`, which needs Freeze's counter test, which reads
        // `connected` — stuck at the very first reply, not only at the
        // freezing one.
        d.react(&[("login", Value::Bool(true))]).unwrap();
        let err = d.advance_by(150).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Causality { .. }),
            "expected causality error, got {err}"
        );
    }
}
